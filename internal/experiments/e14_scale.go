package experiments

import (
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/psim"
)

// E14 — multi-core scale: the region engine from E13 pushed to 1024
// cells and one million mobile hosts, sweeping the worker count at a
// fixed partition. Where E13 varies the partition (regions) to show
// partition invariance, E14 fixes the partition per tier and varies
// only Workers — which the engine guarantees cannot change a byte of
// output — so the full Summary (every counter, not just the headline)
// must be identical down the column. What changes is wall-clock time:
// construction (bulk parallel AddMHs), the windows themselves
// (size-aware static dealing or per-window work stealing), the barrier
// drain (per-region, on the stepping worker), and the post-run merges
// (sharded Summary, parallel MissingResults) all scale with Workers.
//
// The table reports build and run wall-clock separately, the speedup
// over the tier's Workers=1 row, the process peak RSS, and the core
// count the row actually had (runtime.GOMAXPROCS) — on a single-core
// host the sweep still pins the determinism property, but the speedup
// column measures scheduling overhead rather than parallelism.
//
// The topology and workload are E13's (2ms constant wired latency =
// lookahead, ring mobility, Poisson requests); the region count per
// tier keeps the per-region causal matrix (n×n in wired group size)
// small enough that the 1M tier fits in CI-class RAM.

// E14Tier is one world size of the worker sweep. Regions is fixed per
// tier: E14 varies workers, not the partition.
type E14Tier struct {
	Cells   int
	MHs     int
	Regions int
	Horizon time.Duration
}

// E14Row is one measured configuration.
type E14Row struct {
	E14Tier
	Workers int
	// Steal marks the per-window work-stealing row (Workers = the
	// sweep's maximum).
	Steal bool
	// Cores is runtime.GOMAXPROCS(0) at measurement time — the
	// parallelism the row could actually use.
	Cores int

	Issued      int64
	Delivered   int64
	Ratio       float64
	Duplicates  int64
	CrossFrames int64
	Missing     int
	Violations  int64
	Steps       uint64

	// Build is the wall-clock of world construction + bulk AddMHs; Wall
	// is RunUntil alone.
	Build time.Duration
	Wall  time.Duration
	// Speedup is the tier's Workers=1 Wall over this row's Wall (1.0 for
	// the Workers=1 row itself).
	Speedup float64
	// PeakRSS is the process resident-set high-water mark (bytes) after
	// the row — monotone across rows, so the tier's last row bounds the
	// whole sweep. PeakRSSOK is false where the probe is unavailable
	// (no procfs); the table then prints an explicit "n/a" instead of a
	// lookalike number from a different scale.
	PeakRSS   uint64
	PeakRSSOK bool
	// HeadlineEq reports whether the row's full Summary — every counter,
	// not just issued/delivered — equals the tier's Workers=1 row. The
	// partition is fixed, so equality is exact by the engine's
	// serial==parallel guarantee.
	HeadlineEq bool
}

// E14Run builds and runs one configuration and returns its row plus the
// full Summary (the sweep compares Summaries across worker counts;
// Speedup and HeadlineEq are filled by the sweep).
func E14Run(seed int64, tier E14Tier, workers int, steal bool) (E14Row, psim.Summary) {
	base := e13Config(seed, tier.Cells)
	cells := make([]ids.MSS, tier.Cells)
	for i := range cells {
		cells[i] = ids.MSS(i + 1)
	}
	servers := make([]ids.Server, base.NumServers)
	for i := range servers {
		servers[i] = ids.Server(i + 1)
	}
	scfg := e13Script(cells, servers, tier.Horizon)

	t0 := time.Now()
	pw := psim.New(psim.Config{
		Base:      base,
		Regions:   tier.Regions,
		Workers:   workers,
		WorkSteal: steal,
		Lookahead: E13Lookahead,
	})
	pw.AddMHs(tier.MHs, func(i int) (ids.MH, ids.MSS, []psim.MHEvent) {
		id := ids.MH(i + 1)
		start, events := psim.BuildScript(seed, id, cells, scfg)
		return id, start, events
	})
	build := time.Since(t0)

	t0 = time.Now()
	pw.RunUntil(tier.Horizon + tier.Horizon/2)
	wall := time.Since(t0)

	rss, rssOK := metrics.PeakRSS()
	s := pw.Summary()
	return E14Row{
		E14Tier:     tier,
		Workers:     workers,
		Steal:       steal,
		Cores:       runtime.GOMAXPROCS(0),
		Issued:      s.Issued,
		Delivered:   s.Delivered,
		Ratio:       s.Ratio,
		Duplicates:  s.Duplicates,
		CrossFrames: s.CrossFrames,
		Missing:     len(pw.MissingResults()),
		Violations:  s.Violations,
		Steps:       s.Steps,
		Build:       build,
		Wall:        wall,
		PeakRSS:     rss,
		PeakRSSOK:   rssOK,
	}, s
}

// E14Tiers returns the sweep's world sizes for a scale.
func E14Tiers(sc Scale) []E14Tier {
	if sc.MHs < DefaultScale().MHs {
		return []E14Tier{
			{Cells: 16, MHs: 2000, Regions: 4, Horizon: 4 * time.Second},
		}
	}
	return []E14Tier{
		{Cells: 256, MHs: 100000, Regions: 32, Horizon: 8 * time.Second},
		{Cells: 1024, MHs: 1000000, Regions: 64, Horizon: 4 * time.Second},
	}
}

// E14Workers returns the worker sweep for a scale.
func E14Workers(sc Scale) []int {
	if sc.MHs < DefaultScale().MHs {
		return []int{1, 2}
	}
	return []int{1, 2, 4, 8}
}

// ParseE14Tier parses a "cells:mhs:regions:horizonSec" override (the CI
// smoke tier) into a single-tier sweep.
func ParseE14Tier(s string) (E14Tier, bool) {
	parts := strings.Split(s, ":")
	if len(parts) != 4 {
		return E14Tier{}, false
	}
	var n [4]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return E14Tier{}, false
		}
		n[i] = v
	}
	return E14Tier{
		Cells:   n[0],
		MHs:     n[1],
		Regions: n[2],
		Horizon: time.Duration(n[3]) * time.Second,
	}, true
}

// E14Scale runs the full sweep: every tier at every worker count. When
// the worker list sweeps (more than one count), one extra work-stealing
// row at the maximum count rides along; steal=true instead runs every
// row under work stealing (the CI smoke's third variant, which needs
// exactly one row per invocation so its snapshots compare 1:1). tiers
// nil means E14Tiers(sc); workers nil means E14Workers(sc). Each tier's
// first row is the speedup and equality baseline: HeadlineEq on every
// other row asserts the full Summary equal to it.
func E14Scale(seed int64, sc Scale, tiers []E14Tier, workers []int, steal bool) []E14Row {
	if tiers == nil {
		tiers = E14Tiers(sc)
	}
	if workers == nil {
		workers = E14Workers(sc)
	}
	maxW := 0
	for _, w := range workers {
		if w > maxW {
			maxW = w
		}
	}
	var out []E14Row
	for _, tier := range tiers {
		var base psim.Summary
		var baseWall time.Duration
		haveBase := false
		runOne := func(w int, st bool) {
			row, s := E14Run(seed, tier, w, st)
			if !haveBase {
				row.Speedup = 1
				row.HeadlineEq = true
				base, baseWall, haveBase = s, row.Wall, true
			} else {
				row.Speedup = float64(baseWall) / float64(row.Wall)
				row.HeadlineEq = s == base
			}
			out = append(out, row)
		}
		for _, w := range workers {
			runOne(w, steal)
		}
		if !steal && len(workers) > 1 && maxW > 1 {
			runOne(maxW, true)
		}
	}
	return out
}
