package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

// The figure replays are pinned to golden traces: every event (sends,
// deliveries, drops), its timing, endpoints and flags must match the
// checked-in files byte for byte. This freezes both the protocol
// behaviour and the simulator's determinism; any intentional protocol
// change must regenerate the goldens consciously.
func TestFigureReplaysMatchGoldenTraces(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(rec *trace.Recorder)
	}{
		{"fig3", func(rec *trace.Recorder) { ReplayFigure3(rec.Observe) }},
		{"fig4", func(rec *trace.Recorder) { ReplayFigure4(rec.Observe) }},
		{"mig1", func(rec *trace.Recorder) { ReplayMigration1(rec.Observe) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := trace.New()
			tc.run(rec)
			got := rec.String()
			goldenPath := filepath.Join("testdata", tc.name+".trace")
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("read golden: %v", err)
			}
			if got != string(want) {
				t.Errorf("trace diverged from %s;\nregenerate deliberately if the protocol changed.\ngot:\n%s", goldenPath, got)
			}
		})
	}
}
