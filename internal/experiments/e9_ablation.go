package experiments

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/rdpcore"
)

// E9Row compares one inactivity level with the §5 footnote 3
// optimization off and on.
type E9Row struct {
	InactiveProb   float64
	Hold           bool
	Delivered      int64
	Retrans        int64
	WirelessDrops  int64
	HeldResults    int64
	MeanLatency    time.Duration
	UpdateCurrLocs int64
}

// E9HoldForInactive is the ablation for the paper's §5 footnote 3
// optimization: "if the MSS is able to detect that the target MH is
// currently inactive, it may keep the message, save the re-transmission
// by the proxy, and wait until the MH becomes active again." For each
// inactivity level the same seeded workload runs with the optimization
// off and on; the optimization should convert proxy retransmissions and
// wasted wireless sends into held results without hurting delivery or
// latency.
func E9HoldForInactive(seed int64, sc Scale) []E9Row {
	var rows []E9Row
	for _, inact := range []float64{0.2, 0.5} {
		for _, hold := range []bool{false, true} {
			cfg := baseConfig(seed)
			cfg.HoldForInactive = hold
			w := rdpcore.NewWorld(cfg)
			_, delivered := drive(w, sc, netsim.Exponential{MeanDelay: time.Second, Floor: 100 * time.Millisecond}, inact)
			rows = append(rows, E9Row{
				InactiveProb:   inact,
				Hold:           hold,
				Delivered:      delivered,
				Retrans:        w.Stats.Retransmissions.Value(),
				WirelessDrops:  w.Stats.WirelessDrops.Value(),
				HeldResults:    w.Stats.HeldResults.Value(),
				MeanLatency:    w.Stats.ResultLatency.Mean(),
				UpdateCurrLocs: w.Stats.UpdateCurrLocs.Value(),
			})
		}
	}
	return rows
}
