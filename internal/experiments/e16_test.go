package experiments

import "testing"

// TestE16QuickSweep runs the quick-scale E16 tier in both
// representations and enforces the experiment's gates: perfect paired
// delivery (the guard that licenses the headline ratio), zero
// duplicates, an identical outstanding ledger, shared proxies engaging
// only on the aggregated row, and the state reduction itself.
func TestE16QuickSweep(t *testing.T) {
	rows := E16Aggregation(1, SmallScale())
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want a faithful/aggregated pair", len(rows))
	}
	f, a := rows[0], rows[1]
	if f.Aggregated || !a.Aggregated {
		t.Fatalf("row order: got aggregated=%v,%v, want false,true", f.Aggregated, a.Aggregated)
	}
	for _, r := range rows {
		if r.Missing != 0 {
			t.Errorf("aggregated=%v: %d undelivered requests", r.Aggregated, r.Missing)
		}
		if r.Duplicates != 0 {
			t.Errorf("aggregated=%v: %d duplicate deliveries", r.Aggregated, r.Duplicates)
		}
		if r.Issued == 0 || r.Delivered != r.Issued {
			t.Errorf("aggregated=%v: issued=%d delivered=%d, want equal and non-zero",
				r.Aggregated, r.Issued, r.Delivered)
		}
		if r.Handoffs == 0 {
			t.Errorf("aggregated=%v: no hand-offs; the migration wave never ran", r.Aggregated)
		}
		if r.StateBytes <= 0 {
			t.Errorf("aggregated=%v: StateBytes = %d, want > 0", r.Aggregated, r.StateBytes)
		}
	}
	if f.Delivered != a.Delivered {
		t.Errorf("delivered diverge: faithful %d vs aggregated %d", f.Delivered, a.Delivered)
	}
	if f.Outstanding != a.Outstanding || f.Outstanding == 0 {
		t.Errorf("outstanding ledgers: faithful %d vs aggregated %d, want equal and non-zero",
			f.Outstanding, a.Outstanding)
	}
	if f.SharedProxies != 0 {
		t.Errorf("faithful row hosts %d shared proxies, want 0", f.SharedProxies)
	}
	if a.SharedProxies != int64(a.Stations) {
		t.Errorf("SharedProxies = %d, want one per station (%d)", a.SharedProxies, a.Stations)
	}
	// TIS-side collapse: one subscription firing per group, not per host.
	if a.Notifications != int64(a.Stations) || f.Notifications != int64(f.MHs) {
		t.Errorf("notifications: faithful %d (want %d), aggregated %d (want %d)",
			f.Notifications, f.MHs, a.Notifications, a.Stations)
	}
	// The headline gates: the guard must have licensed the ratios, and
	// even the smallest tier clears the 10× state floor; coalescing must
	// strictly reduce hand-off signaling.
	if a.Reduction < 10 {
		t.Errorf("state reduction = %.1fx, want >= 10x (faithful %.0f B/MSS, aggregated %.0f B/MSS)",
			a.Reduction, f.PerMSS, a.PerMSS)
	}
	if a.SigReduction <= 1 {
		t.Errorf("signaling reduction = %.2fx, want > 1x (faithful %d msgs, aggregated %d msgs)",
			a.SigReduction, f.Signaling, a.Signaling)
	}
}

// TestE16Determinism replays one aggregated tier twice: the schedule,
// the coalescing timers and the set encodings must be pure functions of
// the seed.
func TestE16Determinism(t *testing.T) {
	a, b := E16Run(3, 1000, true), E16Run(3, 1000, true)
	a.Wall, b.Wall = 0, 0
	a.PeakRSS, b.PeakRSS = 0, 0
	a.PeakRSSOK, b.PeakRSSOK = false, false
	if a != b {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
