package experiments

import "testing"

// TestE11ProtectionPlateausCollapseWithout is the acceptance test for
// E11. Below saturation the protected and unprotected variants match.
// At 2× saturation the unprotected station must collapse (goodput well
// under capacity, unbounded inbox growth from retry storms) while the
// protected stack plateaus near capacity with a bounded inbox, refuses
// or abandons the excess explicitly, and never loses an admitted
// request.
func TestE11ProtectionPlateausCollapseWithout(t *testing.T) {
	rows := E11Overload(7, SmallScale())
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 offered multiples x on/off)", len(rows))
	}
	byPoint := map[float64]map[bool]E11Row{}
	for _, r := range rows {
		if r.Issued == 0 {
			t.Fatalf("x=%.1f protected=%v: no requests issued", r.OfferedX, r.Protected)
		}
		if r.LostAdmitted != 0 {
			t.Errorf("x=%.1f protected=%v: %d admitted requests lost, want 0",
				r.OfferedX, r.Protected, r.LostAdmitted)
		}
		if byPoint[r.OfferedX] == nil {
			byPoint[r.OfferedX] = map[bool]E11Row{}
		}
		byPoint[r.OfferedX][r.Protected] = r
	}

	// Below saturation: protection is invisible — everything delivered,
	// nothing refused or abandoned.
	for _, x := range []float64{0.5} {
		for _, prot := range []bool{true, false} {
			r := byPoint[x][prot]
			if r.Delivered != r.Issued || r.Abandoned != 0 {
				t.Errorf("x=%.1f protected=%v: delivered %d of %d (abandoned %d), want all",
					x, prot, r.Delivered, r.Issued, r.Abandoned)
			}
		}
	}

	over, under := byPoint[2][true], byPoint[2][false]
	if over.GoodputPct < 90 {
		t.Errorf("protected goodput at 2x = %.1f%% of capacity, want >= 90%% (plateau)", over.GoodputPct)
	}
	if under.GoodputPct > 50 {
		t.Errorf("unprotected goodput at 2x = %.1f%% of capacity, want <= 50%% (collapse)", under.GoodputPct)
	}
	if over.Refusals == 0 || over.Abandoned == 0 {
		t.Errorf("protected 2x: refusals=%d abandoned=%d; excess load must be explicitly refused",
			over.Refusals, over.Abandoned)
	}
	// Every issued request is accounted for: delivered or abandoned
	// (both can hold for a request admitted by an in-flight re-offer
	// after its deadline fired, hence >= rather than ==).
	if over.Delivered+over.Abandoned < over.Issued {
		t.Errorf("protected 2x: delivered %d + abandoned %d < issued %d: unaccounted shortfall",
			over.Delivered, over.Abandoned, over.Issued)
	}
	// Queue growth: bounded near the high-watermark with admission,
	// unbounded without.
	if over.InboxPeak > 4*32 {
		t.Errorf("protected 2x inbox peak = %d, want near the high-watermark (32)", over.InboxPeak)
	}
	if under.InboxPeak < 10*over.InboxPeak {
		t.Errorf("unprotected 2x inbox peak = %d vs protected %d; expected unbounded growth",
			under.InboxPeak, over.InboxPeak)
	}
	if under.ClientRetries == 0 {
		t.Error("unprotected 2x: no timeout retries; the collapse amplifier never engaged")
	}
}

// TestE11Deterministic reruns one seed and expects identical rows: the
// workload, backoff jitter and admission decisions all flow from forked
// streams of the world's seeded RNG.
func TestE11Deterministic(t *testing.T) {
	a := E11Overload(3, SmallScale())
	b := E11Overload(3, SmallScale())
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs between runs:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}
