package experiments

import (
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
	"repro/internal/sidam"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E8Row is one sweep point of experiment E8.
type E8Row struct {
	MeanResidence time.Duration
	Subscriptions int64
	Fired         int64 // notifications generated at the owning TIS
	Received      int64 // notifications delivered to the roaming subscriber
	Ratio         float64
	RemoteOps     int64
	MeanHops      float64
}

// E8Subscriptions exercises the paper's subscribe operation end-to-end:
// roaming subscribers register threshold watches on SIDAM traffic
// regions while staff hosts feed updates; every notification generated
// must reach its (migrating, occasionally sleeping) subscriber. Paper
// claim (§3): "the RDP may as well be used for implementing the
// operation subscribe, by which a mobile client is informed of any major
// change in the traffic situation".
func E8Subscriptions(seed int64, sc Scale) []E8Row {
	var rows []E8Row
	for _, res := range []time.Duration{500 * time.Millisecond, 2 * time.Second} {
		cfg := baseConfig(seed)
		cfg.NumServers = 4
		w := rdpcore.NewWorld(cfg)
		net := sidam.Install(w, sidam.Config{
			Regions:           32,
			LocalProc:         netsim.Constant(15 * time.Millisecond),
			HopProc:           netsim.Constant(5 * time.Millisecond),
			InitialCongestion: 0,
		})
		cells := w.StationList()
		tises := net.TISList()

		var received int64
		subscribers := sc.MHs
		// Subscribers roam and watch one region each (threshold 20),
		// re-subscribing after each notification for a continuous feed.
		for i := 1; i <= subscribers; i++ {
			mhID := ids.MH(i)
			rng := w.Kernel.RNG().Fork()
			start := cells[rng.Intn(len(cells))]
			mh := w.AddMH(mhID, start)
			region := uint32(rng.Intn(32))
			entry := tises[rng.Intn(len(tises))]
			resub := func() { mh.IssueRequest(entry, sidam.EncodeSubscribe(region, 20)) }
			mh.OnResult(func(_ ids.RequestID, _ []byte, dup bool) {
				if dup {
					return
				}
				received++
				w.Schedule(0, resub)
			})
			w.Schedule(0, resub)

			mob := workload.Mobility{
				Picker:       workload.UniformCells{Cells: cells},
				Residence:    netsim.Exponential{MeanDelay: res, Floor: res / 10},
				InactiveProb: 0.1,
				InactiveDur:  netsim.Exponential{MeanDelay: res, Floor: res / 5},
			}
			for _, ev := range workload.Itinerary(rng, mob, start, sc.Horizon) {
				ev := ev
				w.Schedule(ev.At, func() {
					switch ev.Kind {
					case workload.EvMigrate:
						w.Migrate(mhID, ev.Cell)
					case workload.EvDeactivate:
						w.SetActive(mhID, false)
					case workload.EvActivate:
						w.SetActive(mhID, true)
					}
				})
			}
			w.Schedule(sc.Horizon+200*time.Millisecond, func() { w.SetActive(mhID, true) })
		}

		// Staff hosts feed updates that swing each region's congestion
		// far past every threshold.
		staffID := ids.MH(subscribers + 1)
		staff := w.AddMH(staffID, cells[0])
		staffRng := w.Kernel.RNG().Fork()
		for at := 500 * time.Millisecond; at < sc.Horizon; at += 500 * time.Millisecond {
			at := at
			w.Schedule(at, func() {
				region := uint32(staffRng.Intn(32))
				value := int32(staffRng.Intn(101))
				staff.IssueRequest(tises[staffRng.Intn(len(tises))], sidam.EncodeUpdate(region, value))
			})
		}

		w.RunUntil(sc.Horizon + sc.Horizon/2)

		fired := net.Stats.Notifications.Value()
		ratio := 0.0
		if fired > 0 {
			ratio = float64(received) / float64(fired)
		}
		meanHops := 0.0
		if r := net.Stats.RemoteOps.Value(); r > 0 {
			meanHops = float64(net.Stats.HopsTotal.Value()) / float64(r)
		}
		rows = append(rows, E8Row{
			MeanResidence: res,
			Subscriptions: net.Stats.Subscriptions.Value(),
			Fired:         fired,
			Received:      received,
			Ratio:         ratio,
			RemoteOps:     net.Stats.RemoteOps.Value(),
			MeanHops:      meanHops,
		})
	}
	return rows
}

// scriptedProc replays a fixed sequence of processing delays, then zero.
type scriptedProc struct {
	delays []time.Duration
	i      int
}

// Sample implements netsim.LatencyModel.
func (s *scriptedProc) Sample(*sim.RNG) time.Duration {
	if s.i < len(s.delays) {
		d := s.delays[s.i]
		s.i++
		return d
	}
	return 0
}

// Mean implements netsim.LatencyModel.
func (s *scriptedProc) Mean() time.Duration { return 0 }

// figureConfig is the deterministic 3-station network of the paper's
// worked examples: 5ms wired, 10ms wireless.
func figureConfig(proc netsim.LatencyModel, obs netsim.Observer) rdpcore.Config {
	cfg := rdpcore.DefaultConfig()
	cfg.NumMSS = 3
	cfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
	cfg.ServerProc = proc
	cfg.Observer = obs
	return cfg
}

// ReplayFigure3 reruns the Figure 3 scenario (single request, two
// migrations, one lost forward, retransmission, del-proxy) and returns
// the finished world. Attach a trace recorder through obs to print the
// message flow.
func ReplayFigure3(obs netsim.Observer) *rdpcore.World {
	w := rdpcore.NewWorld(figureConfig(netsim.Constant(100*time.Millisecond), obs))
	mh := w.AddMH(1, 1)
	w.Schedule(0, func() { mh.IssueRequest(1, []byte("q")) })
	w.Schedule(20*time.Millisecond, func() { w.Migrate(1, 2) })
	w.Schedule(126*time.Millisecond, func() { w.Migrate(1, 3) })
	w.RunUntil(2 * time.Second)
	return w
}

// ReplayFigure4 reruns the Figure 4 scenario (three overlapping
// requests, RKpR arming and re-arming, the del-pref-only special
// message) and returns the finished world.
func ReplayFigure4(obs netsim.Observer) *rdpcore.World {
	proc := &scriptedProc{delays: []time.Duration{
		30 * time.Millisecond, 60 * time.Millisecond, 55 * time.Millisecond,
	}}
	w := rdpcore.NewWorld(figureConfig(proc, obs))
	mh := w.AddMH(1, 1)
	w.Schedule(0, func() { mh.IssueRequest(1, []byte("A")) })
	w.Schedule(20*time.Millisecond, func() { w.Migrate(1, 2) })
	w.Schedule(60*time.Millisecond, func() { mh.IssueRequest(1, []byte("B")) })
	w.Schedule(80*time.Millisecond, func() { mh.IssueRequest(1, []byte("C")) })
	w.RunUntil(2 * time.Second)
	return w
}
