package experiments

import (
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
	"repro/internal/workload"
)

// E11 station-capacity model. Every mobile host is parked in cell 1, so
// station 1 is the bottleneck under study. With a co-located proxy a
// request costs the station exactly three inbox slots — the Request,
// the ServerResult, and the AckMH (proxy-to-self forwards bypass the
// inbox) — so one station finishes at most 1/(3·ProcDelay) requests per
// second. The sweep offers fractions and multiples of that capacity.
const (
	e11ProcDelay   = 5 * time.Millisecond
	e11SlotsPerReq = 3
)

// e11Capacity is the hot station's service capacity in requests/second.
func e11Capacity() float64 {
	return 1.0 / (e11SlotsPerReq * e11ProcDelay.Seconds())
}

// E11Row is one sweep point of experiment E11: an offered-load multiple
// of station capacity, with the overload-protection stack on or off.
type E11Row struct {
	OfferedX  float64
	Protected bool
	Issued    int64
	Delivered int64
	// Refusals counts busy-NACK events (several may hit one request as
	// it backs off and re-offers); ClientRetries counts client re-sends
	// (busy backoff re-offers when protected, timeout retries when not).
	Refusals      int64
	ClientRetries int64
	// Abandoned counts never-admitted requests whose deadline expired —
	// the protected stack's explicit, accounted casualty.
	Abandoned  int64
	Duplicates int64
	// GoodputPct is results delivered during the issuing horizon as a
	// percentage of what the hot station could finish in that time.
	GoodputPct float64
	P99Latency time.Duration
	InboxPeak  int64
	// NetworkShed counts frames shed by the bounded link queues (the
	// protected stack arms them; admission keeps them from engaging
	// here, so shortfall stays attributable to explicit refusals).
	NetworkShed int64
	// LostAdmitted counts requests the station admitted but never
	// delivered. The protocol's guarantee makes this zero by
	// construction; the experiment verifies it under overload.
	LostAdmitted int64
}

// e11Config assembles one sweep point's world. Both variants run the
// same deterministic network (constant latencies, fast servers) with
// per-message station processing, so the hot station's inbox is the only
// contended resource. The protected variant layers the full E11 stack:
// three-class priority processing, admission control with busy-NACKs,
// client backoff with per-request deadlines, and bounded link queues
// (with wired ARQ beneath them, so a shed is backpressure, not loss).
// The unprotected variant is the classic configuration: ack priority,
// unbounded queues, and a 1-second client timeout — the retry amplifier
// that turns saturation into congestion collapse.
func e11Config(seed int64, protected bool) rdpcore.Config {
	cfg := baseConfig(seed)
	cfg.WiredLatency = netsim.Constant(2 * time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
	cfg.ServerProc = netsim.Constant(5 * time.Millisecond)
	cfg.ProcDelay = e11ProcDelay
	if protected {
		cfg.PriorityClasses = true
		cfg.AdmissionHighWater = 32
		cfg.BusyRetryBase = 150 * time.Millisecond
		cfg.BusyRetryMax = 2 * time.Second
		cfg.RequestDeadline = 6 * time.Second
		cfg.WiredQueueLimit = 1024
		cfg.WirelessQueueLimit = 1024
		cfg.WiredARQ = netsim.ARQConfig{Enabled: true, RTO: 60 * time.Millisecond, MaxBackoff: 250 * time.Millisecond}
	} else {
		cfg.RequestTimeout = time.Second
	}
	return cfg
}

// E11Overload measures graceful degradation under overload. It sweeps
// the offered load across 0.5×, 1× and 2× of the hot station's service
// capacity, running each point with the overload-protection stack on
// and off over the same seeded workload. Expected shape: below
// saturation the two variants match (goodput ≈ offered). Past
// saturation the unprotected station collapses — timeout retries
// multiply the offered load, the inbox grows without bound, and useful
// throughput falls well below capacity — while the protected station
// plateaus at its capacity, refuses the excess explicitly (every
// shortfall is a busy refusal or a deadline abandonment, never a lost
// admitted request), and keeps its inbox near the high-watermark.
func E11Overload(seed int64, sc Scale) []E11Row {
	var rows []E11Row
	for _, mult := range []float64{0.5, 1, 2} {
		for _, protected := range []bool{true, false} {
			rows = append(rows, e11Run(seed, sc, mult, protected))
		}
	}
	return rows
}

// e11Run executes one sweep point and gathers its row.
func e11Run(seed int64, sc Scale, mult float64, protected bool) E11Row {
	cfg := e11Config(seed, protected)
	w := rdpcore.NewWorld(cfg)
	horizon := sc.Horizon

	type pendingReq struct {
		mh  ids.MH
		req ids.RequestID
	}
	var reqs []pendingReq
	// Poisson arrivals per host, dimensioned so the aggregate offered
	// rate is mult × capacity.
	mean := time.Duration(float64(sc.MHs) / (e11Capacity() * mult) * float64(time.Second))
	for i := 1; i <= sc.MHs; i++ {
		mhID := ids.MH(i)
		rng := w.Kernel.RNG().Fork()
		mh := w.AddMH(mhID, 1)
		reqCfg := workload.Requests{
			Interarrival: netsim.Exponential{MeanDelay: mean, Floor: time.Millisecond},
			Servers:      serverList(w),
			PayloadBytes: 32,
		}
		for _, a := range workload.Schedule(rng, reqCfg, horizon) {
			a := a
			w.Schedule(a.At, func() {
				reqs = append(reqs, pendingReq{mh: mhID, req: mh.IssueRequest(a.Server, a.Payload)})
			})
		}
	}
	// Goodput is measured over the issuing horizon only — the
	// steady-state plateau — so neither variant gets credit for backlog
	// drained after the offered load stops.
	var deliveredAtHorizon int64
	w.Schedule(horizon, func() { deliveredAtHorizon = w.Stats.ResultsDelivered.Value() })
	w.RunUntil(horizon + horizon/2)

	var lostAdmitted int64
	for _, pr := range reqs {
		mh := w.MHs[pr.mh]
		if mh.Admitted(pr.req) && !mh.Seen(pr.req) {
			lostAdmitted++
		}
	}
	return E11Row{
		OfferedX:      mult,
		Protected:     protected,
		Issued:        int64(len(reqs)),
		Delivered:     w.Stats.ResultsDelivered.Value(),
		Refusals:      w.Stats.BusyRefusals.Value(),
		ClientRetries: w.Stats.BusyRetries.Value() + w.Stats.RequestRetries.Value(),
		Abandoned:     w.Stats.RequestsAbandoned.Value(),
		Duplicates:    w.Stats.DuplicateDeliveries.Value(),
		GoodputPct:    100 * float64(deliveredAtHorizon) / (e11Capacity() * horizon.Seconds()),
		P99Latency:    w.Stats.ResultLatency.Quantile(0.99),
		InboxPeak:     w.Stats.InboxPeak.Value(),
		NetworkShed:   w.Stats.NetworkShed.Value(),
		LostAdmitted:  lostAdmitted,
	}
}
