package experiments

import (
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/mobileip"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/proxymig"
	"repro/internal/rdpcore"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E12 topology: a metropolitan ring of stations with distance-dependent
// backbone latency, the setting where a statically anchored proxy pays
// an ever-longer triangle route as its MH walks away. Servers hang off
// the ring at the flat wired latency.
const (
	e12Stations   = 12
	e12RingBase   = 2 * time.Millisecond
	e12RingPerHop = 2 * time.Millisecond
)

// E12Row is one policy variant of experiment E12.
type E12Row struct {
	Policy    string
	Issued    int64
	Delivered int64
	Ratio     float64
	// MeanHops and WorstHops measure route stretch: ring hops crossed by
	// each result forward (RDP) or home-agent tunnel (Mobile IP).
	MeanHops    float64
	WorstHops   int64
	MeanLatency time.Duration
	P95Latency  time.Duration
	// Migrations counts completed proxy migrations, Refused the offers
	// the target declined; MigMsgs/MigBytes are the control-plane cost.
	Migrations int64
	Refused    int64
	MigMsgs    int64
	MigBytes   int64
	// Jain is the fairness of where delivery state lived and worked:
	// per-station proxy-seconds for RDP, per-station tunnel load for the
	// Mobile IP baseline.
	Jain float64
	Dups int64
}

// e12Config assembles the ring world for one RDP policy variant. Slow
// servers (≈2s) and short cell residence (≈500ms, set by the driver)
// mean an MH typically crosses several cells while a request is in
// service — the high-migration-rate regime the subsystem targets.
func e12Config(seed int64, pol proxymig.Policy) rdpcore.Config {
	cfg := baseConfig(seed)
	cfg.NumMSS = e12Stations
	cfg.WiredLatency = netsim.Constant(5 * time.Millisecond) // server links
	cfg.WiredPairLatency = netsim.RingLatency(e12Stations, e12RingBase, e12RingPerHop)
	cfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
	cfg.ServerProc = netsim.Exponential{MeanDelay: 2 * time.Second, Floor: 200 * time.Millisecond}
	cfg.Migration = pol
	cfg.StationDistance = proxymig.RingDistance(e12Stations)
	return cfg
}

// e12Drive runs the E12 workload: every MH walks the ring cell by cell
// (workload.RingWalk) with ≈500ms residence, so its distance from any
// fixed anchor drifts upward, issuing Poisson requests against the slow
// servers.
func e12Drive(w *rdpcore.World, sc Scale) (issued, delivered int64) {
	cells := w.StationList()
	horizon := sc.Horizon
	type pendingReq struct {
		mh  ids.MH
		req ids.RequestID
	}
	var reqs []pendingReq
	for i := 1; i <= sc.MHs; i++ {
		mhID := ids.MH(i)
		rng := w.Kernel.RNG().Fork()
		start := cells[rng.Intn(len(cells))]
		mh := w.AddMH(mhID, start)
		mob := workload.Mobility{
			Picker:    workload.RingWalk{Cells: cells},
			Residence: netsim.Exponential{MeanDelay: 500 * time.Millisecond, Floor: 100 * time.Millisecond},
		}
		for _, ev := range workload.Itinerary(rng, mob, start, horizon) {
			ev := ev
			if ev.Kind == workload.EvMigrate {
				w.Schedule(ev.At, func() { w.Migrate(mhID, ev.Cell) })
			}
		}
		reqCfg := workload.Requests{
			Interarrival: netsim.Exponential{MeanDelay: 1200 * time.Millisecond, Floor: 50 * time.Millisecond},
			Servers:      serverList(w),
			PayloadBytes: 32,
		}
		for _, a := range workload.Schedule(rng, reqCfg, horizon) {
			a := a
			w.Schedule(a.At, func() {
				reqs = append(reqs, pendingReq{mh: mhID, req: mh.IssueRequest(a.Server, a.Payload)})
			})
		}
	}
	w.RunUntil(horizon + horizon/2)
	for _, pr := range reqs {
		issued++
		if w.MHs[pr.mh].Seen(pr.req) {
			delivered++
		}
	}
	return issued, delivered
}

// E12Migration sweeps the proxy-migration policy — fixed proxy, hop
// thresholds k ∈ {1,2,4,8}, load-driven — over the ring workload and
// adds the Mobile IP baseline with each MH's home agent at its start
// cell (the static-anchor analogue of the fixed proxy). Expected shape:
// the fixed proxy's mean forwarding hops drift toward the ring mean
// while hop-threshold migration bounds them near k at a quantified
// message overhead; migration also spreads proxy residence across the
// ring, beating the baseline's static anchors on Jain fairness — all
// without giving up exactly-once delivery, which Mobile IP loses.
func E12Migration(seed int64, sc Scale) []E12Row {
	variants := []struct {
		name string
		pol  proxymig.Policy
	}{
		{"RDP fixed proxy", proxymig.Policy{}},
		{"RDP hop k=1", proxymig.Policy{HopThreshold: 1, MinInterval: 250 * time.Millisecond}},
		{"RDP hop k=2", proxymig.Policy{HopThreshold: 2, MinInterval: 250 * time.Millisecond}},
		{"RDP hop k=4", proxymig.Policy{HopThreshold: 4, MinInterval: 250 * time.Millisecond}},
		{"RDP hop k=8", proxymig.Policy{HopThreshold: 8, MinInterval: 250 * time.Millisecond}},
		{"RDP load-driven", proxymig.Policy{LoadDriven: true, MinInterval: 250 * time.Millisecond}},
	}
	var rows []E12Row
	for _, v := range variants {
		w := rdpcore.NewWorld(e12Config(seed, v.pol))
		issued, delivered := e12Drive(w, sc)
		ratio := 0.0
		if issued > 0 {
			ratio = float64(delivered) / float64(issued)
		}
		meanHops := 0.0
		if c := w.Stats.ForwardCount.Value(); c > 0 {
			meanHops = float64(w.Stats.ForwardHops.Value()) / float64(c)
		}
		rows = append(rows, E12Row{
			Policy:      v.name,
			Issued:      issued,
			Delivered:   delivered,
			Ratio:       ratio,
			MeanHops:    meanHops,
			WorstHops:   w.Stats.ForwardHopMax.Value(),
			MeanLatency: w.Stats.ResultLatency.Mean(),
			P95Latency:  w.Stats.ResultLatency.Quantile(0.95),
			Migrations:  w.Stats.MigCompleted.Value(),
			Refused:     w.Stats.MigRefusals.Value(),
			MigMsgs:     w.Stats.MigMessages.Value(),
			MigBytes:    w.Stats.MigStateBytes.Value(),
			Jain:        metrics.JainIndex(w.Stats.HostLoads(w.StationList())),
			Dups:        w.Stats.DuplicateDeliveries.Value(),
		})
	}
	return append(rows, e12MobileIP(seed, sc))
}

// e12MobileIP runs the same ring workload under the Mobile IP baseline.
// Each MH's home agent is its starting station, exactly where RDP would
// create (and pin) the first proxy; tunnel hops are measured by an
// observer over the ring distance of every home-agent tunnel send.
func e12MobileIP(seed int64, sc Scale) E12Row {
	dist := proxymig.RingDistance(e12Stations)
	var hopSum, worstHops int64
	mcfg := mobileip.DefaultConfig()
	mcfg.Seed = seed
	mcfg.NumMSS = e12Stations
	mcfg.NumServers = 2
	mcfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
	mcfg.WiredPairLatency = netsim.RingLatency(e12Stations, e12RingBase, e12RingPerHop)
	mcfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
	mcfg.ServerProc = netsim.Exponential{MeanDelay: 2 * time.Second, Floor: 200 * time.Millisecond}
	mcfg.RequestTimeout = 2 * time.Second // upper-layer recovery shim
	mcfg.Observer = func(at sim.Time, layer netsim.Layer, kind netsim.EventKind, from, to ids.NodeID, m msg.Message) {
		if layer != netsim.LayerWired || kind != netsim.EventSent || m.Kind() != msg.KindMIPTunnel {
			return
		}
		d := int64(dist(from.MSS(), to.MSS()))
		hopSum += d
		if d > worstHops {
			worstHops = d
		}
	}
	mw := mobileip.NewWorld(mcfg)
	cells := mw.StationList()
	horizon := sc.Horizon
	type pendingReq struct {
		mn  *mobileip.MobileNode
		req ids.RequestID
	}
	var reqs []pendingReq
	for i := 1; i <= sc.MHs; i++ {
		rng := mw.Kernel.RNG().Fork()
		mhID := ids.MH(i)
		start := cells[rng.Intn(len(cells))]
		mn := mw.AddMH(mhID, start, start) // home agent = starting cell
		mob := workload.Mobility{
			Picker:    workload.RingWalk{Cells: cells},
			Residence: netsim.Exponential{MeanDelay: 500 * time.Millisecond, Floor: 100 * time.Millisecond},
		}
		for _, ev := range workload.Itinerary(rng, mob, start, horizon) {
			ev := ev
			if ev.Kind == workload.EvMigrate {
				mw.Kernel.After(ev.At, func() { mw.Migrate(mhID, ev.Cell) })
			}
		}
		reqCfg := workload.Requests{
			Interarrival: netsim.Exponential{MeanDelay: 1200 * time.Millisecond, Floor: 50 * time.Millisecond},
			Servers:      []ids.Server{1, 2},
			PayloadBytes: 32,
		}
		for _, a := range workload.Schedule(rng, reqCfg, horizon) {
			a := a
			mw.Kernel.After(a.At, func() {
				reqs = append(reqs, pendingReq{mn: mn, req: mn.IssueRequest(a.Server, a.Payload)})
			})
		}
	}
	mw.RunUntil(horizon + horizon/2)
	var issued, delivered int64
	for _, pr := range reqs {
		issued++
		if pr.mn.Seen(pr.req) {
			delivered++
		}
	}
	ratio := 0.0
	if issued > 0 {
		ratio = float64(delivered) / float64(issued)
	}
	// Local tunnels (care-of = home) never hit the wire; they count as
	// zero-hop forwards in the mean, same as an RDP proxy forwarding to
	// its own cell.
	meanHops := 0.0
	if tn := mw.Stats.Tunnels.Value(); tn > 0 {
		meanHops = float64(hopSum) / float64(tn)
	}
	loads := make([]float64, 0, len(cells))
	for _, st := range cells {
		loads = append(loads, float64(mw.Stats.TunnelLoad[st]))
	}
	return E12Row{
		Policy:      "MobileIP home=start",
		Issued:      issued,
		Delivered:   delivered,
		Ratio:       ratio,
		MeanHops:    meanHops,
		WorstHops:   worstHops,
		MeanLatency: mw.Stats.ResultLatency.Mean(),
		P95Latency:  mw.Stats.ResultLatency.Quantile(0.95),
		Jain:        metrics.JainIndex(loads),
		Dups:        mw.Stats.Duplicates.Value(),
	}
}

// ReplayMigration1 reruns the migration worked example on the Figure 3
// network (3 stations, 5ms wired, 10ms wireless): two requests share a
// proxy at mss1 (server times 800ms and 250ms), the MH moves to mss2 at
// 50ms, and the fast result's remote forward fires the hop-threshold
// trigger. The full mig_offer → mig_commit → mig_state → pref_redirect
// (+ confirm) → mig_gc exchange runs while the slow request is still at
// the server; its result then takes the direct path from the migrated
// proxy. Attach a trace recorder through obs to print the message flow
// (cmd/rdptrace -scenario mig1).
func ReplayMigration1(obs netsim.Observer) *rdpcore.World {
	proc := &scriptedProc{delays: []time.Duration{800 * time.Millisecond, 250 * time.Millisecond}}
	cfg := figureConfig(proc, obs)
	cfg.Migration = proxymig.Policy{HopThreshold: 1}
	w := rdpcore.NewWorld(cfg)
	mh := w.AddMH(1, 1)
	w.Schedule(0, func() { mh.IssueRequest(1, []byte("slow")) })
	w.Schedule(5*time.Millisecond, func() { mh.IssueRequest(1, []byte("fast")) })
	w.Schedule(50*time.Millisecond, func() { w.Migrate(1, 2) })
	w.RunUntil(3 * time.Second)
	return w
}
