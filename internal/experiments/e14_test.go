package experiments

import (
	"testing"
	"time"
)

// TestE14QuickSweep runs the quick-scale E14 worker sweep and enforces
// the experiment's gates: perfect delivery, no stragglers, no protocol
// violations, and full-Summary equality between the Workers=1 baseline
// and every other row of a tier — including the work-stealing row the
// sweep appends at the maximum worker count.
func TestE14QuickSweep(t *testing.T) {
	rows := E14Scale(1, SmallScale(), nil, nil, false)
	if len(rows) == 0 {
		t.Fatal("empty sweep")
	}
	var stealRows int
	for _, r := range rows {
		if r.Ratio != 1.0 {
			t.Errorf("workers=%d steal=%v: ratio %.6f, want 1.0", r.Workers, r.Steal, r.Ratio)
		}
		if r.Missing != 0 {
			t.Errorf("workers=%d steal=%v: %d undelivered requests", r.Workers, r.Steal, r.Missing)
		}
		if r.Violations != 0 {
			t.Errorf("workers=%d steal=%v: %d protocol violations", r.Workers, r.Steal, r.Violations)
		}
		if !r.HeadlineEq {
			t.Errorf("workers=%d steal=%v: Summary differs from the Workers=1 run", r.Workers, r.Steal)
		}
		if r.Issued == 0 {
			t.Errorf("workers=%d steal=%v: no requests issued", r.Workers, r.Steal)
		}
		if r.CrossFrames == 0 {
			t.Errorf("workers=%d steal=%v: no cross-region frames in a %d-region world", r.Workers, r.Steal, r.Regions)
		}
		if r.PeakRSS == 0 {
			t.Errorf("workers=%d steal=%v: peak RSS not measured", r.Workers, r.Steal)
		}
		if r.Steal {
			stealRows++
		}
	}
	if stealRows == 0 {
		t.Error("sweep appended no work-stealing row")
	}
}

// TestE14ScaleStealOnly checks the CI smoke's single-row mode: an
// explicit worker list of one entry with steal=true yields exactly one
// row per tier, under work stealing.
func TestE14ScaleStealOnly(t *testing.T) {
	tiers := []E14Tier{{Cells: 8, MHs: 200, Regions: 4, Horizon: 2 * time.Second}}
	rows := E14Scale(1, SmallScale(), tiers, []int{2}, true)
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want exactly 1", len(rows))
	}
	if !rows[0].Steal || rows[0].Workers != 2 {
		t.Errorf("row = workers=%d steal=%v, want workers=2 steal=true", rows[0].Workers, rows[0].Steal)
	}
}

// TestParseE14Tier covers the -e14tier override format.
func TestParseE14Tier(t *testing.T) {
	tier, ok := ParseE14Tier("64:50000:16:3")
	if !ok {
		t.Fatal("valid tier rejected")
	}
	want := E14Tier{Cells: 64, MHs: 50000, Regions: 16, Horizon: 3 * time.Second}
	if tier != want {
		t.Errorf("got %+v, want %+v", tier, want)
	}
	for _, bad := range []string{"", "64:50000:16", "64:50000:16:3:9", "64:x:16:3", "0:1:1:1", "-1:1:1:1"} {
		if _, ok := ParseE14Tier(bad); ok {
			t.Errorf("ParseE14Tier(%q) accepted", bad)
		}
	}
}
