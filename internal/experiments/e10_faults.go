package experiments

import (
	"time"

	"repro/internal/faults"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
	"repro/internal/sim"
)

// E10Row is one sweep point of experiment E10: a wired loss rate and a
// number of MSS crash/restart windows, with the recovery stack (wired
// ARQ + stable-store checkpointing + hand-off timeouts + registration
// confirmations) either on or off.
type E10Row struct {
	Loss            float64
	Crashes         int
	Recovery        bool
	Issued          int64
	Delivered       int64
	Ratio           float64
	Duplicates      int64
	WiredDrops      int64
	RecoveryResends int64
	HandoffReissues int64
	CheckpointOps   int64
}

// e10Plan builds the declarative fault schedule for one sweep point: a
// uniform per-link fault distribution derived from the loss rate (drops,
// a quarter as many duplicates, equally many delays up to 30ms — i.e.
// reordering), plus crash/restart windows spread across the issuing
// horizon. Every crashed station restarts 3 seconds later — well before
// the drain ends, so ARQ senders always reach their peer again.
func e10Plan(loss float64, crashes int, sc Scale) faults.Plan {
	plan := faults.Plan{
		Default: faults.LinkFaults{
			DropProb:  loss,
			DupProb:   loss / 4,
			DelayProb: loss,
			DelayMax:  30 * time.Millisecond,
		},
	}
	victims := []ids.MSS{2, 5, 7}
	for i := 0; i < crashes && i < len(victims); i++ {
		at := sc.Horizon * time.Duration(3+3*i) / 10
		plan.Crashes = append(plan.Crashes, faults.Crash{
			MSS: victims[i], At: at, RestartAt: at + 3*time.Second,
		})
	}
	return plan
}

// e10Config assembles the world configuration for one sweep point. The
// recovery variant layers the full robustness stack over the base
// network; the ablation removes it all — and causal order with it, since
// causal delivery over a backbone that permanently drops frames wedges
// every causally-later message (the failure mode the ARQ exists to fix).
// Wireless latency is pinned to a constant so the only nondeterminism
// under study is the injected wired chaos.
func e10Config(seed int64, recovery bool) rdpcore.Config {
	cfg := baseConfig(seed)
	cfg.WirelessLatency = netsim.Constant(20 * time.Millisecond)
	if recovery {
		cfg.WiredARQ = netsim.ARQConfig{Enabled: true, RTO: 60 * time.Millisecond, MaxBackoff: 250 * time.Millisecond}
		cfg.Checkpoint = true
		cfg.RecoveryGrace = 400 * time.Millisecond
		cfg.HandoffTimeout = 500 * time.Millisecond
		cfg.RegConfirm = true
		cfg.GreetRefresh = 2 * time.Second
		// The client-side retry covers the one loss the wired recovery
		// stack cannot see: a request uplinked into a cell whose station
		// is down is dropped on the radio. The timeout must exceed the
		// worst crash-induced delivery delay (3s outage + ARQ backoff +
		// recovery grace), or the retry re-fetches results that were
		// merely delayed and every such re-fetch becomes a duplicate.
		cfg.RequestTimeout = 6 * time.Second
	} else {
		cfg.Causal = false
	}
	return cfg
}

// E10WiredFaults removes the paper's two reliability assumptions — the
// reliable causal wired network (assumption 1) and the implicit "support
// stations do not fail" — and measures what restores the delivery
// guarantee. It sweeps the wired loss rate and the number of MSS
// crash/restart windows; for each point the same seeded workload runs
// with the recovery stack on and off. Expected shape: with recovery,
// delivery stays at 100% with zero duplicates at every swept loss rate
// (≤ 20%) and crash count; the ablation loses results as soon as faults
// are injected, degrading further with loss and crashes.
func E10WiredFaults(seed int64, sc Scale) []E10Row {
	var rows []E10Row
	for _, loss := range []float64{0.05, 0.10, 0.20} {
		for _, crashes := range []int{1, 2} {
			for _, recovery := range []bool{true, false} {
				cfg := e10Config(seed, recovery)
				k := sim.NewKernel(cfg.Seed)
				inj := faults.New(k, e10Plan(loss, crashes, sc))
				cfg.WiredFaults = inj
				w := rdpcore.NewWorldOn(k, cfg)
				inj.Schedule(w.CrashMSS, w.RestartMSS)
				issued, delivered := drive(w, sc, netsim.Exponential{MeanDelay: 3 * time.Second, Floor: 300 * time.Millisecond}, 0)
				ratio := 0.0
				if issued > 0 {
					ratio = float64(delivered) / float64(issued)
				}
				rows = append(rows, E10Row{
					Loss:            loss,
					Crashes:         crashes,
					Recovery:        recovery,
					Issued:          issued,
					Delivered:       delivered,
					Ratio:           ratio,
					Duplicates:      w.Stats.DuplicateDeliveries.Value(),
					WiredDrops:      w.Stats.WiredDrops.Value(),
					RecoveryResends: w.Stats.RecoveryResends.Value(),
					HandoffReissues: w.Stats.HandoffReissues.Value(),
					CheckpointOps:   w.CheckpointWrites(),
				})
			}
		}
	}
	return rows
}
