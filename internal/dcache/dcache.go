// Package dcache implements the disconnected-operation result cache
// policy (E17): a TTL+LRU cache of server results keyed by (server,
// request digest), held at the proxy's support station so repeated
// queries are answered at the fixed edge without re-executing at the
// server.
//
// The cache is a pure policy object: it owns no timers and touches no
// protocol state. rdpcore consults it when a proxy is about to issue a
// ServerRequest and fills it when a ServerResult arrives. Consistency
// rule: a cached result may be served for at most TTL after it was
// stored — RDP requests are queries, and the TTL bounds the staleness a
// repeated query can observe (DESIGN.md §12). The cache is volatile by
// design: an MSS crash clears it, which costs recomputation but never
// correctness.
package dcache

import (
	"time"

	"repro/internal/ids"
)

// Config sets the cache policy. The zero value disables caching
// entirely (Enabled returns false), keeping every existing experiment's
// message trace byte-identical.
type Config struct {
	// TTL bounds how long a stored result may be served. Zero means no
	// expiry: entries live until evicted by the byte or entry budget.
	TTL time.Duration
	// MaxBytes is the payload-byte budget; least-recently-used entries
	// are evicted to stay under it. Zero means no byte budget.
	MaxBytes int64
	// MaxEntries caps the number of cached results. Zero means no cap.
	MaxEntries int
}

// Enabled reports whether the configuration describes an actual cache.
// A cache with neither a byte budget nor an entry cap is unbounded and
// therefore not allowed; such configs (including the zero value) are
// treated as "caching off".
func (c Config) Enabled() bool { return c.MaxBytes > 0 || c.MaxEntries > 0 }

// Outcome classifies one lookup.
type Outcome uint8

// Lookup outcomes.
const (
	// Miss: no entry for the key.
	Miss Outcome = iota
	// Hit: a live entry was found and returned.
	Hit
	// Stale: an entry existed but its TTL had passed; it was evicted and
	// nothing was returned.
	Stale
)

// String names the outcome for traces and tests.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Stale:
		return "stale"
	default:
		return "miss"
	}
}

// Key identifies one cacheable computation: the server asked and the
// digest of the request payload.
type Key struct {
	Server ids.Server
	Digest uint64
}

// Digest hashes a request payload with FNV-1a (64 bit). Two requests to
// the same server with equal payloads are the same computation.
func Digest(payload []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range payload {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// entry is one cached result, threaded on the LRU list.
type entry struct {
	key        Key
	payload    []byte
	storedAt   time.Duration
	prev, next *entry // LRU list; head = most recent
}

// Cache is a TTL+LRU result cache. Not safe for concurrent use: one
// cache lives inside one station's event-serialized state.
type Cache struct {
	cfg        Config
	entries    map[Key]*entry
	head, tail *entry
	bytes      int64
	evictions  int64
}

// New builds a cache with the given policy. It returns nil for a
// disabled config, and every method tolerates a nil receiver, so
// callers can hold the pointer unconditionally.
func New(cfg Config) *Cache {
	if !cfg.Enabled() {
		return nil
	}
	return &Cache{cfg: cfg, entries: make(map[Key]*entry)}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	return len(c.entries)
}

// Bytes returns the payload bytes currently held.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	return c.bytes
}

// Evictions returns the number of entries evicted by the byte or entry
// budget (TTL expiries are reported per-lookup as Stale, not counted
// here).
func (c *Cache) Evictions() int64 {
	if c == nil {
		return 0
	}
	return c.evictions
}

// Get looks the key up at virtual time now. On Hit the stored payload
// is returned (callers must not mutate it) and the entry becomes most
// recently used. On Stale the expired entry is dropped.
func (c *Cache) Get(key Key, now time.Duration) ([]byte, Outcome) {
	if c == nil {
		return nil, Miss
	}
	e, ok := c.entries[key]
	if !ok {
		return nil, Miss
	}
	if c.cfg.TTL > 0 && now-e.storedAt > c.cfg.TTL {
		c.remove(e)
		return nil, Stale
	}
	c.moveToFront(e)
	return e.payload, Hit
}

// Put stores a result, replacing any previous entry for the key, then
// evicts least-recently-used entries until the budgets hold again. A
// payload larger than the entire byte budget is not cached.
func (c *Cache) Put(key Key, payload []byte, now time.Duration) {
	if c == nil {
		return
	}
	if c.cfg.MaxBytes > 0 && int64(len(payload)) > c.cfg.MaxBytes {
		return
	}
	if e, ok := c.entries[key]; ok {
		c.bytes += int64(len(payload)) - int64(len(e.payload))
		e.payload = payload
		e.storedAt = now
		c.moveToFront(e)
	} else {
		e := &entry{key: key, payload: payload, storedAt: now}
		c.entries[key] = e
		c.bytes += int64(len(payload))
		c.pushFront(e)
	}
	for (c.cfg.MaxBytes > 0 && c.bytes > c.cfg.MaxBytes) ||
		(c.cfg.MaxEntries > 0 && len(c.entries) > c.cfg.MaxEntries) {
		c.evictions++
		c.remove(c.tail)
	}
}

func (c *Cache) pushFront(e *entry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) remove(e *entry) {
	c.unlink(e)
	delete(c.entries, e.key)
	c.bytes -= int64(len(e.payload))
}
