package dcache

import (
	"fmt"
	"testing"
	"time"
)

func key(server uint32, payload string) Key {
	return Key{Server: 1, Digest: Digest([]byte(payload))}
}

func TestDisabledConfig(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config must be disabled")
	}
	if (Config{TTL: time.Second}).Enabled() {
		t.Error("TTL alone (unbounded storage) must be disabled")
	}
	if c := New(Config{}); c != nil {
		t.Error("New(disabled) must return nil")
	}
	// Every method must tolerate the nil cache.
	var c *Cache
	if _, out := c.Get(key(1, "q"), 0); out != Miss {
		t.Errorf("nil Get outcome = %v, want miss", out)
	}
	c.Put(key(1, "q"), []byte("r"), 0)
	if c.Len() != 0 || c.Bytes() != 0 || c.Evictions() != 0 {
		t.Error("nil cache reports non-zero accounting")
	}
}

func TestHitMissStale(t *testing.T) {
	c := New(Config{TTL: 10 * time.Second, MaxEntries: 8})
	k := key(1, "query")
	if _, out := c.Get(k, 0); out != Miss {
		t.Fatalf("empty cache Get = %v, want miss", out)
	}
	c.Put(k, []byte("result"), time.Second)
	got, out := c.Get(k, 5*time.Second)
	if out != Hit || string(got) != "result" {
		t.Fatalf("Get = %q,%v; want result,hit", got, out)
	}
	// Past the TTL the entry is stale: reported once, then gone.
	if _, out := c.Get(k, 12*time.Second); out != Stale {
		t.Fatalf("expired Get = %v, want stale", out)
	}
	if _, out := c.Get(k, 12*time.Second); out != Miss {
		t.Fatalf("Get after stale eviction = %v, want miss", out)
	}
	if c.Len() != 0 {
		t.Errorf("stale entry not removed: len=%d", c.Len())
	}
}

func TestLRUEvictionByEntries(t *testing.T) {
	c := New(Config{MaxEntries: 3})
	for i := 0; i < 3; i++ {
		c.Put(key(1, fmt.Sprint("q", i)), []byte("r"), 0)
	}
	// Touch q0 so q1 becomes the LRU victim.
	if _, out := c.Get(key(1, "q0"), 0); out != Hit {
		t.Fatal("expected q0 hit")
	}
	c.Put(key(1, "q3"), []byte("r"), 0)
	if _, out := c.Get(key(1, "q1"), 0); out != Miss {
		t.Error("q1 should have been the LRU eviction victim")
	}
	for _, q := range []string{"q0", "q2", "q3"} {
		if _, out := c.Get(key(1, q), 0); out != Hit {
			t.Errorf("%s evicted; want it retained", q)
		}
	}
	if c.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", c.Evictions())
	}
}

func TestByteBudgetEviction(t *testing.T) {
	c := New(Config{MaxBytes: 100})
	c.Put(key(1, "a"), make([]byte, 60), 0)
	c.Put(key(1, "b"), make([]byte, 30), 0)
	if c.Bytes() != 90 {
		t.Fatalf("bytes = %d, want 90", c.Bytes())
	}
	// 40 more bytes must push out the LRU entry ("a").
	c.Put(key(1, "c"), make([]byte, 40), 0)
	if _, out := c.Get(key(1, "a"), 0); out != Miss {
		t.Error("oldest entry survived the byte budget")
	}
	if c.Bytes() != 70 || c.Len() != 2 {
		t.Errorf("bytes=%d len=%d, want 70/2", c.Bytes(), c.Len())
	}
	// An oversized payload is refused outright, evicting nothing.
	c.Put(key(1, "huge"), make([]byte, 101), 0)
	if c.Len() != 2 {
		t.Error("oversized payload disturbed the cache")
	}
}

func TestPutReplaceAdjustsBytes(t *testing.T) {
	c := New(Config{MaxBytes: 100})
	k := key(1, "q")
	c.Put(k, make([]byte, 80), 0)
	c.Put(k, make([]byte, 10), time.Second)
	if c.Bytes() != 10 || c.Len() != 1 {
		t.Errorf("bytes=%d len=%d after replace, want 10/1", c.Bytes(), c.Len())
	}
	// The replacement refreshed storedAt, so TTL counts from the second Put.
	c2 := New(Config{TTL: 5 * time.Second, MaxEntries: 4})
	c2.Put(k, []byte("old"), 0)
	c2.Put(k, []byte("new"), 4*time.Second)
	if got, out := c2.Get(k, 8*time.Second); out != Hit || string(got) != "new" {
		t.Errorf("Get after replace = %q,%v; want new,hit", got, out)
	}
}

func TestDigestDistinguishesPayloads(t *testing.T) {
	if Digest([]byte("a")) == Digest([]byte("b")) {
		t.Error("digest collision on trivial inputs")
	}
	if Digest(nil) != Digest([]byte{}) {
		t.Error("nil and empty payloads must digest equally")
	}
	// Same digest, different server => different key.
	k1 := Key{Server: 1, Digest: Digest([]byte("q"))}
	k2 := Key{Server: 2, Digest: Digest([]byte("q"))}
	if k1 == k2 {
		t.Error("server must be part of the key")
	}
}
