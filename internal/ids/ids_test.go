package ids

import (
	"testing"
	"testing/quick"
)

func TestZeroValuesInvalid(t *testing.T) {
	if NoMH.Valid() {
		t.Error("NoMH must be invalid")
	}
	if NoMSS.Valid() {
		t.Error("NoMSS must be invalid")
	}
	if NoServer.Valid() {
		t.Error("NoServer must be invalid")
	}
	if NoNode.Valid() {
		t.Error("NoNode must be invalid")
	}
	if NoProxy.Valid() {
		t.Error("NoProxy must be invalid")
	}
	if NoRequest.Valid() {
		t.Error("NoRequest must be invalid")
	}
}

func TestNodeRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		node NodeID
		back NodeID
	}{
		{"mh", MH(7).Node(), MH(7).Node().MH().Node()},
		{"mss", MSS(3).Node(), MSS(3).Node().MSS().Node()},
		{"server", Server(2).Node(), Server(2).Node().Server().Node()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.node != tt.back {
				t.Errorf("round trip changed node: %v -> %v", tt.node, tt.back)
			}
		})
	}
}

func TestNodeConversionMismatch(t *testing.T) {
	n := MH(5).Node()
	if got := n.MSS(); got != NoMSS {
		t.Errorf("MH node converted to MSS %v, want NoMSS", got)
	}
	if got := n.Server(); got != NoServer {
		t.Errorf("MH node converted to Server %v, want NoServer", got)
	}
	if got := MSS(5).Node().MH(); got != NoMH {
		t.Errorf("MSS node converted to MH %v, want NoMH", got)
	}
}

func TestStrings(t *testing.T) {
	tests := []struct {
		give interface{ String() string }
		want string
	}{
		{MH(3), "mh3"},
		{MSS(2), "mss2"},
		{Server(1), "srv1"},
		{NodeID{}, "none"},
		{MH(4).Node(), "mh4"},
		{ProxyID{Host: 2, Seq: 1}, "proxy(mss2#1)"},
		{NoProxy, "proxy(nil)"},
		{RequestID{Origin: 3, Seq: 7}, "req(mh3#7)"},
		{NoRequest, "req(nil)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestRequestIDLess(t *testing.T) {
	a := RequestID{Origin: 1, Seq: 2}
	b := RequestID{Origin: 1, Seq: 3}
	c := RequestID{Origin: 2, Seq: 1}
	if !a.Less(b) || b.Less(a) {
		t.Error("seq ordering broken")
	}
	if !b.Less(c) || c.Less(b) {
		t.Error("origin ordering broken")
	}
	if a.Less(a) {
		t.Error("Less must be irreflexive")
	}
}

func TestRequestIDLessIsStrictOrder(t *testing.T) {
	// Property: Less is a strict total order (trichotomy + transitivity
	// checked pairwise on random triples).
	f := func(o1, s1, o2, s2, o3, s3 uint32) bool {
		a := RequestID{Origin: MH(o1), Seq: s1}
		b := RequestID{Origin: MH(o2), Seq: s2}
		c := RequestID{Origin: MH(o3), Seq: s3}
		// trichotomy
		if a != b && !a.Less(b) && !b.Less(a) {
			return false
		}
		if a == b && (a.Less(b) || b.Less(a)) {
			return false
		}
		// transitivity
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeIDMapKey(t *testing.T) {
	m := map[NodeID]int{
		MH(1).Node():     1,
		MSS(1).Node():    2,
		Server(1).Node(): 3,
	}
	if len(m) != 3 {
		t.Fatalf("distinct kinds with same number must be distinct keys, got %d entries", len(m))
	}
	if m[MSS(1).Node()] != 2 {
		t.Error("lookup by reconstructed key failed")
	}
}
