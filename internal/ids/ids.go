// Package ids defines the typed identifiers used throughout the RDP
// implementation: mobile hosts, mobile support stations, application
// servers, proxies and requests.
//
// Identifiers are small value types so they can be used as map keys and
// embedded in wire messages without allocation. The zero value of every
// identifier type is reserved as "none"/"invalid"; valid identifiers are
// numbered starting at 1 (see NodeKind for the rationale).
package ids

import "strconv"

// NodeKind discriminates the kind of a system node.
type NodeKind uint8

// Node kinds. The zero value is KindNone so an uninitialized NodeID is
// recognizably invalid.
const (
	KindNone NodeKind = iota
	KindMH            // mobile host
	KindMSS           // mobile support station
	KindServer
)

// String returns the short kind tag used in textual traces.
func (k NodeKind) String() string {
	switch k {
	case KindMH:
		return "mh"
	case KindMSS:
		return "mss"
	case KindServer:
		return "srv"
	default:
		return "none"
	}
}

type (
	// MH identifies a mobile host. MHs have a system-wide unique
	// identification (paper §2).
	MH uint32

	// MSS identifies a mobile support station, and thereby also the
	// geographic cell it serves (paper §2).
	MSS uint32

	// Server identifies an application server on the wired network.
	// Servers maintain a fixed address obtainable from the directory
	// service (paper §2).
	Server uint32
)

// None values for each identifier type.
const (
	NoMH     MH     = 0
	NoMSS    MSS    = 0
	NoServer Server = 0
)

// Valid reports whether the identifier denotes an actual mobile host.
func (m MH) Valid() bool { return m != NoMH }

// Valid reports whether the identifier denotes an actual support station.
func (s MSS) Valid() bool { return s != NoMSS }

// Valid reports whether the identifier denotes an actual server.
func (s Server) Valid() bool { return s != NoServer }

// String returns e.g. "mh3".
func (m MH) String() string { return "mh" + strconv.FormatUint(uint64(m), 10) }

// String returns e.g. "mss2".
func (s MSS) String() string { return "mss" + strconv.FormatUint(uint64(s), 10) }

// String returns e.g. "srv1".
func (s Server) String() string { return "srv" + strconv.FormatUint(uint64(s), 10) }

// Node returns the transport address of the mobile host.
func (m MH) Node() NodeID { return NodeID{Kind: KindMH, Num: uint32(m)} }

// Node returns the transport address of the support station.
func (s MSS) Node() NodeID { return NodeID{Kind: KindMSS, Num: uint32(s)} }

// Node returns the transport address of the server.
func (s Server) Node() NodeID { return NodeID{Kind: KindServer, Num: uint32(s)} }

// NodeID is the transport-level address of any node in the system. It is
// comparable and therefore usable as a map key.
type NodeID struct {
	Kind NodeKind
	Num  uint32
}

// NoNode is the zero, invalid node address.
var NoNode = NodeID{}

// Valid reports whether the address denotes an actual node.
func (n NodeID) Valid() bool { return n.Kind != KindNone }

// String returns e.g. "mss2", "mh7", "srv1" or "none".
func (n NodeID) String() string {
	if n.Kind == KindNone {
		return "none"
	}
	return n.Kind.String() + strconv.FormatUint(uint64(n.Num), 10)
}

// MH converts the address back to a mobile-host identifier; it returns
// NoMH if the address is not a mobile host.
func (n NodeID) MH() MH {
	if n.Kind != KindMH {
		return NoMH
	}
	return MH(n.Num)
}

// MSS converts the address back to a support-station identifier; it
// returns NoMSS if the address is not a support station.
func (n NodeID) MSS() MSS {
	if n.Kind != KindMSS {
		return NoMSS
	}
	return MSS(n.Num)
}

// Server converts the address back to a server identifier; it returns
// NoServer if the address is not a server.
func (n NodeID) Server() Server {
	if n.Kind != KindServer {
		return NoServer
	}
	return Server(n.Num)
}

// ProxyID identifies one incarnation of a proxy object. A proxy is hosted
// at an MSS; Seq disambiguates successive proxies created at the same
// station so that stale references are detectable (paper §3.1: the pref
// contains "the address of the MSS and a proxyID").
type ProxyID struct {
	Host MSS
	Seq  uint32
}

// NoProxy is the zero, invalid proxy identifier (a pref holding NoProxy
// is the paper's "null address").
var NoProxy = ProxyID{}

// Valid reports whether the identifier denotes an actual proxy.
func (p ProxyID) Valid() bool { return p.Host.Valid() }

// String returns e.g. "proxy(mss2#1)".
func (p ProxyID) String() string {
	if !p.Valid() {
		return "proxy(nil)"
	}
	return "proxy(" + p.Host.String() + "#" + strconv.FormatUint(uint64(p.Seq), 10) + ")"
}

// RequestID identifies a service request issued by a mobile host. Seq is
// assigned by the MH and is unique per MH, which also gives the MH its
// duplicate-detection capability (paper assumption 5).
type RequestID struct {
	Origin MH
	Seq    uint32
}

// NoRequest is the zero, invalid request identifier.
var NoRequest = RequestID{}

// Valid reports whether the identifier denotes an actual request.
func (r RequestID) Valid() bool { return r.Origin.Valid() }

// String returns e.g. "req(mh3#7)".
func (r RequestID) String() string {
	if !r.Valid() {
		return "req(nil)"
	}
	return "req(" + r.Origin.String() + "#" + strconv.FormatUint(uint64(r.Seq), 10) + ")"
}

// Less orders request identifiers first by origin, then by sequence
// number. It provides a stable order for deterministic iteration.
func (r RequestID) Less(o RequestID) bool {
	if r.Origin != o.Origin {
		return r.Origin < o.Origin
	}
	return r.Seq < o.Seq
}

// Incarnation numbers a mobile host's boot epoch. The counter lives in
// the host's non-volatile flash — it is the one datum an MH reboot does
// NOT lose — and increments monotonically on every restart after a
// crash. A host that never crashes stays at incarnation 1 forever.
// Requests, forwarded results and lease heartbeats carry the issuing
// incarnation so stations and proxies can recognize traffic that
// belongs to a dead (pre-crash) epoch of the host and refuse to deliver
// it (E18's amnesia guarantee: a rebooted host, having lost its
// duplicate-detection seen-set, must never be handed a result its
// previous self asked for).
type Incarnation uint32

// FirstIncarnation is the boot epoch of a host that has never crashed.
// Incarnation 0 is reserved as "unknown" (legacy traffic from code
// paths that predate incarnation tracking is treated as first-epoch).
const FirstIncarnation Incarnation = 1

// String returns e.g. "inc2".
func (i Incarnation) String() string {
	return "inc" + strconv.FormatUint(uint64(i), 10)
}

// BatchID identifies an atomic request batch opened by a mobile host.
// Like RequestID, Seq is assigned by the origin MH and is unique per MH,
// so a batch is identifiable across hand-offs, proxy migrations and
// MSS crashes without any global coordination.
type BatchID struct {
	Origin MH
	Seq    uint32
}

// NoBatch is the zero, invalid batch identifier. A request carrying
// NoBatch is an ordinary, non-batched request.
var NoBatch = BatchID{}

// Valid reports whether the identifier denotes an actual batch.
func (b BatchID) Valid() bool { return b.Origin.Valid() }

// String returns e.g. "batch(mh3#7)".
func (b BatchID) String() string {
	if !b.Valid() {
		return "batch(nil)"
	}
	return "batch(" + b.Origin.String() + "#" + strconv.FormatUint(uint64(b.Seq), 10) + ")"
}

// Less orders batch identifiers first by origin, then by sequence
// number, mirroring RequestID.Less for deterministic iteration.
func (b BatchID) Less(o BatchID) bool {
	if b.Origin != o.Origin {
		return b.Origin < o.Origin
	}
	return b.Seq < o.Seq
}
