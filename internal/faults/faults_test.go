package faults

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestInjectorDeterministic(t *testing.T) {
	plan := Plan{Default: LinkFaults{DropProb: 0.3, DupProb: 0.1, DelayProb: 0.2, DelayMax: 20 * time.Millisecond}}
	run := func() []netsim.LinkFault {
		inj := New(sim.NewKernel(42), plan)
		var out []netsim.LinkFault
		for i := 0; i < 200; i++ {
			out = append(out, inj.OnWired(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.LinkAck{Seq: uint64(i)}))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged under equal seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	inj := New(sim.NewKernel(42), plan)
	for i := 0; i < 200; i++ {
		inj.OnWired(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.LinkAck{Seq: uint64(i)})
	}
	if inj.Stats.Drops.Value() == 0 || inj.Stats.Dups.Value() == 0 || inj.Stats.Delays.Value() == 0 {
		t.Errorf("expected every fault type to fire over 200 draws: drops=%d dups=%d delays=%d",
			inj.Stats.Drops.Value(), inj.Stats.Dups.Value(), inj.Stats.Delays.Value())
	}
}

func TestLinkOverride(t *testing.T) {
	plan := Plan{
		Default: LinkFaults{},
		Links: map[Link]LinkFaults{
			{From: ids.MSS(1).Node(), To: ids.MSS(2).Node()}: {DropProb: 1},
		},
	}
	inj := New(sim.NewKernel(1), plan)
	if f := inj.OnWired(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.LinkAck{}); !f.Drop {
		t.Error("overridden link should always drop")
	}
	if f := inj.OnWired(ids.MSS(2).Node(), ids.MSS(1).Node(), msg.LinkAck{}); f.Drop {
		t.Error("reverse direction uses the default (no drop)")
	}
}

func TestPartitionWindow(t *testing.T) {
	k := sim.NewKernel(1)
	plan := Plan{Partitions: []Partition{{
		Start: 100 * time.Millisecond,
		End:   200 * time.Millisecond,
		A:     []ids.MSS{1},
		B:     []ids.MSS{2, 3},
	}}}
	inj := New(k, plan)
	probe := func() bool { return inj.OnWired(ids.MSS(2).Node(), ids.MSS(1).Node(), msg.LinkAck{}).Drop }
	var before, during, after bool
	k.After(50*time.Millisecond, func() { before = probe() })
	k.After(150*time.Millisecond, func() { during = probe() })
	k.After(250*time.Millisecond, func() { after = probe() })
	k.Run()
	if before || !during || after {
		t.Errorf("partition gating wrong: before=%t during=%t after=%t", before, during, after)
	}
	// Links with at least one endpoint outside both groups are unaffected.
	k2 := sim.NewKernel(1)
	inj2 := New(k2, plan)
	k2.After(150*time.Millisecond, func() {
		if inj2.OnWired(ids.MSS(1).Node(), ids.Server(1).Node(), msg.LinkAck{}).Drop {
			t.Error("MSS->server link must not be partitioned")
		}
		if inj2.OnWired(ids.MSS(2).Node(), ids.MSS(3).Node(), msg.LinkAck{}).Drop {
			t.Error("intra-group link must not be partitioned")
		}
	})
	k2.Run()
	if inj.Stats.PartitionDrops.Value() != 1 {
		t.Errorf("PartitionDrops = %d, want 1", inj.Stats.PartitionDrops.Value())
	}
}

func TestScheduleCrashWindows(t *testing.T) {
	k := sim.NewKernel(1)
	inj := New(k, Plan{Crashes: []Crash{
		{MSS: 1, At: 10 * time.Millisecond, RestartAt: 30 * time.Millisecond},
		{MSS: 2, At: 20 * time.Millisecond}, // never restarts
	}})
	type ev struct {
		up  bool
		mss ids.MSS
		at  sim.Time
	}
	var evs []ev
	inj.Schedule(
		func(m ids.MSS) { evs = append(evs, ev{false, m, k.Now()}) },
		func(m ids.MSS) { evs = append(evs, ev{true, m, k.Now()}) },
	)
	k.Run()
	want := []ev{
		{false, 1, sim.Time(10 * time.Millisecond)},
		{false, 2, sim.Time(20 * time.Millisecond)},
		{true, 1, sim.Time(30 * time.Millisecond)},
	}
	if len(evs) != len(want) {
		t.Fatalf("events = %v, want %v", evs, want)
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, evs[i], want[i])
		}
	}
	if inj.Stats.Crashes.Value() != 2 || inj.Stats.Restarts.Value() != 1 {
		t.Errorf("stats = %d crashes, %d restarts; want 2, 1",
			inj.Stats.Crashes.Value(), inj.Stats.Restarts.Value())
	}
}

func TestSlowdownWindow(t *testing.T) {
	k := sim.NewKernel(1)
	inj := New(k, Plan{Slowdowns: []Slowdown{
		{MSS: 1, Start: 100 * time.Millisecond, End: 200 * time.Millisecond, Extra: 30 * time.Millisecond},
		{MSS: 1, Start: 150 * time.Millisecond, End: 250 * time.Millisecond, Extra: 10 * time.Millisecond},
		{MSS: 2, Start: 0, End: time.Second, Extra: 5 * time.Millisecond},
	}})
	var before, during, overlap, after time.Duration
	k.After(50*time.Millisecond, func() { before = inj.ExtraProcDelay(1) })
	k.After(120*time.Millisecond, func() { during = inj.ExtraProcDelay(1) })
	k.After(170*time.Millisecond, func() { overlap = inj.ExtraProcDelay(1) })
	k.After(300*time.Millisecond, func() { after = inj.ExtraProcDelay(1) })
	k.Run()
	if before != 0 || during != 30*time.Millisecond ||
		overlap != 40*time.Millisecond || after != 0 {
		t.Errorf("ExtraProcDelay windows wrong: before=%v during=%v overlap=%v after=%v",
			before, during, overlap, after)
	}
}

func TestLoadFactorSpikes(t *testing.T) {
	inj := New(sim.NewKernel(1), Plan{Spikes: []LoadSpike{
		{Start: 100 * time.Millisecond, End: 300 * time.Millisecond, Factor: 2},
		{Start: 200 * time.Millisecond, End: 400 * time.Millisecond, Factor: 3},
	}})
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{50 * time.Millisecond, 1},
		{150 * time.Millisecond, 2},
		{250 * time.Millisecond, 6}, // overlapping spikes compound
		{350 * time.Millisecond, 3},
		{450 * time.Millisecond, 1},
	}
	for _, c := range cases {
		if got := inj.LoadFactor(c.at); got != c.want {
			t.Errorf("LoadFactor(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}
