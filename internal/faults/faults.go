// Package faults provides a deterministic, seeded fault plan for the
// wired backbone and the support stations: per-link drop / duplicate /
// delay probabilities (delays double as reordering), timed bidirectional
// partitions between MSS groups, and scheduled MSS crash/restart
// windows.
//
// The Injector implements netsim.FaultHook, so it plugs into any
// netsim.Wired (and, through the same hook, into tcpnet's simulated
// fault mode); crash windows are armed on the sim kernel via Schedule.
// All randomness flows through a single forked RNG stream, so a plan is
// byte-reproducible under a fixed seed.
package faults

import (
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// LinkFaults is the per-attempt fault distribution of one directed
// wired link (or the plan-wide default).
type LinkFaults struct {
	// DropProb loses the attempt.
	DropProb float64
	// DupProb delivers an extra copy.
	DupProb float64
	// DelayProb adds extra latency, uniform in (0, DelayMax]; a delayed
	// frame may be overtaken by its successors (reordering).
	DelayProb float64
	DelayMax  time.Duration
}

// Link names one directed wired link.
type Link struct {
	From ids.NodeID
	To   ids.NodeID
}

// Partition cuts every wired link between group A and group B (both
// directions) during [Start, End).
type Partition struct {
	Start time.Duration
	End   time.Duration
	A     []ids.MSS
	B     []ids.MSS
}

// Crash schedules one MSS outage: the station crashes at At (losing its
// volatile state) and restarts at RestartAt. A zero RestartAt means the
// station stays down for the rest of the run.
type Crash struct {
	MSS       ids.MSS
	At        time.Duration
	RestartAt time.Duration
}

// Disconnect schedules one MH disconnection window (E17): the host
// drops off the radio at At — issued requests journal to the offline
// queue — and reconnects at ReconnectAt, replaying the queue. A zero
// ReconnectAt leaves the host disconnected for the rest of the run.
type Disconnect struct {
	MH          ids.MH
	At          time.Duration
	ReconnectAt time.Duration
}

// MHCrash schedules one mobile-host crash/restart window (E18): the
// host crashes at At — losing ALL volatile state (seen-set, outstanding
// table, in-flight batches, backoff timers) — and reboots at RestartAt
// under a fresh incarnation number drawn from its non-volatile flash.
// A zero RestartAt leaves the host dead for the rest of the run; its
// orphaned proxy is reclaimed by the lease GC.
type MHCrash struct {
	MH        ids.MH
	At        time.Duration
	RestartAt time.Duration
}

// Slowdown makes one MSS process every inbox message Extra slower
// during [Start, End) — the slow-station fault mode of E11 (an
// overloaded or thermally throttled support station, not a crashed
// one: the station stays up, its queue just grows).
type Slowdown struct {
	MSS   ids.MSS
	Start time.Duration
	End   time.Duration
	Extra time.Duration
}

// LoadSpike multiplies the offered client load by Factor during
// [Start, End). The injector only reports the factor (LoadFactor);
// the workload driver samples it when spacing requests.
type LoadSpike struct {
	Start  time.Duration
	End    time.Duration
	Factor float64
}

// Plan is a complete declarative fault schedule.
type Plan struct {
	// Default applies to every wired link without a Links override.
	Default LinkFaults
	// Links overrides the distribution per directed link.
	Links map[Link]LinkFaults
	// Partitions lists timed bidirectional partitions.
	Partitions []Partition
	// Crashes lists MSS crash/restart windows.
	Crashes []Crash
	// Disconnects lists MH disconnection windows (E17).
	Disconnects []Disconnect
	// MHCrashes lists MH crash/restart windows (E18).
	MHCrashes []MHCrash
	// Slowdowns lists timed per-station processing slowdowns.
	Slowdowns []Slowdown
	// Spikes lists timed offered-load multipliers.
	Spikes []LoadSpike
}

// Stats counts what the injector actually did, for the metrics layer.
type Stats struct {
	// Drops, Dups and Delays count injected link faults by type.
	Drops  metrics.Counter
	Dups   metrics.Counter
	Delays metrics.Counter
	// PartitionDrops counts frames cut by an active partition (also
	// included in Drops).
	PartitionDrops metrics.Counter
	// Crashes and Restarts count executed schedule entries.
	Crashes  metrics.Counter
	Restarts metrics.Counter
	// Disconnects and Reconnects count executed disconnection windows.
	Disconnects metrics.Counter
	Reconnects  metrics.Counter
	// MHCrashes and MHRestarts count executed mobile-host outage
	// windows (E18).
	MHCrashes  metrics.Counter
	MHRestarts metrics.Counter
}

// Injector executes a Plan. It implements netsim.FaultHook.
type Injector struct {
	k     sim.Scheduler
	plan  Plan
	rng   *sim.RNG
	Stats Stats
}

var _ netsim.FaultHook = (*Injector)(nil)

// New builds an injector for the plan, drawing from a forked stream of
// the scheduler's RNG.
func New(k sim.Scheduler, plan Plan) *Injector {
	return &Injector{k: k, plan: plan, rng: k.RNG().Fork()}
}

// OnWired decides the fault for one physical transmission attempt. The
// partition check runs first (no RNG draw); then drop, duplicate and
// delay are sampled in a fixed order so the stream stays reproducible.
func (inj *Injector) OnWired(from, to ids.NodeID, m msg.Message) netsim.LinkFault {
	if inj.partitioned(from, to) {
		inj.Stats.PartitionDrops.Inc()
		inj.Stats.Drops.Inc()
		return netsim.LinkFault{Drop: true}
	}
	lf := inj.plan.Default
	if o, ok := inj.plan.Links[Link{From: from, To: to}]; ok {
		lf = o
	}
	var f netsim.LinkFault
	if inj.rng.Prob(lf.DropProb) {
		f.Drop = true
		inj.Stats.Drops.Inc()
	}
	if inj.rng.Prob(lf.DupProb) {
		f.Duplicate = true
		inj.Stats.Dups.Inc()
	}
	if inj.rng.Prob(lf.DelayProb) && lf.DelayMax > 0 {
		f.Delay = inj.rng.Uniform(time.Nanosecond, lf.DelayMax)
		inj.Stats.Delays.Inc()
	}
	return f
}

// partitioned reports whether an active partition cuts the (from, to)
// link at the current instant.
func (inj *Injector) partitioned(from, to ids.NodeID) bool {
	if len(inj.plan.Partitions) == 0 {
		return false
	}
	if from.Kind != ids.KindMSS || to.Kind != ids.KindMSS {
		return false
	}
	now := time.Duration(inj.k.Now())
	fm, tm := ids.MSS(from.Num), ids.MSS(to.Num)
	for _, p := range inj.plan.Partitions {
		if now < p.Start || now >= p.End {
			continue
		}
		if (contains(p.A, fm) && contains(p.B, tm)) ||
			(contains(p.B, fm) && contains(p.A, tm)) {
			return true
		}
	}
	return false
}

func contains(set []ids.MSS, m ids.MSS) bool {
	for _, x := range set {
		if x == m {
			return true
		}
	}
	return false
}

// ExtraProcDelay returns the processing slowdown in force for the
// station at the current instant (the sum of overlapping windows).
// Assign it to rdpcore's Config.StationDelayHook.
func (inj *Injector) ExtraProcDelay(m ids.MSS) time.Duration {
	var extra time.Duration
	now := time.Duration(inj.k.Now())
	for _, s := range inj.plan.Slowdowns {
		if s.MSS == m && now >= s.Start && now < s.End {
			extra += s.Extra
		}
	}
	return extra
}

// LoadFactor returns the offered-load multiplier in force at the given
// instant (the product of overlapping spikes; 1 with none active).
// Workload drivers divide their inter-request gaps by it.
func (inj *Injector) LoadFactor(at time.Duration) float64 {
	factor := 1.0
	for _, s := range inj.plan.Spikes {
		if at >= s.Start && at < s.End && s.Factor > 0 {
			factor *= s.Factor
		}
	}
	return factor
}

// Schedule arms the plan's crash/restart windows on the kernel. The
// callbacks are typically World.CrashMSS and World.RestartMSS.
func (inj *Injector) Schedule(crash, restart func(ids.MSS)) {
	for _, c := range inj.plan.Crashes {
		c := c
		inj.k.Defer(c.At, func() {
			inj.Stats.Crashes.Inc()
			crash(c.MSS)
		})
		if c.RestartAt > c.At {
			inj.k.Defer(c.RestartAt, func() {
				inj.Stats.Restarts.Inc()
				restart(c.MSS)
			})
		}
	}
}

// ScheduleDisconnects arms the plan's MH disconnection windows. The
// callbacks are typically World.Disconnect and World.Reconnect.
func (inj *Injector) ScheduleDisconnects(disconnect, reconnect func(ids.MH)) {
	for _, d := range inj.plan.Disconnects {
		d := d
		inj.k.Defer(d.At, func() {
			inj.Stats.Disconnects.Inc()
			disconnect(d.MH)
		})
		if d.ReconnectAt > d.At {
			inj.k.Defer(d.ReconnectAt, func() {
				inj.Stats.Reconnects.Inc()
				reconnect(d.MH)
			})
		}
	}
}

// ScheduleMHCrashes arms the plan's mobile-host crash/restart windows.
// The callbacks are typically World.CrashMH and World.RestartMH.
func (inj *Injector) ScheduleMHCrashes(crash, restart func(ids.MH)) {
	for _, c := range inj.plan.MHCrashes {
		c := c
		inj.k.Defer(c.At, func() {
			inj.Stats.MHCrashes.Inc()
			crash(c.MH)
		})
		if c.RestartAt > c.At {
			inj.k.Defer(c.RestartAt, func() {
				inj.Stats.MHRestarts.Inc()
				restart(c.MH)
			})
		}
	}
}
