// Package workload generates the mobility and request patterns driving
// the experiments: cell itineraries (which cell an MH occupies when, and
// when it is inactive) and request arrival schedules.
//
// The paper's own evaluation plan (§5) was to test RDP "concerning its
// efficiency with respect to several patterns of mobility, queries and
// subscriptions"; this package provides those patterns. Everything is a
// pure function of a seeded RNG, keeping experiment sweeps reproducible.
package workload

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/sim"
)

// Sampler draws durations from a distribution. The netsim latency models
// (Constant, Uniform, Exponential) satisfy it.
type Sampler interface {
	Sample(rng *sim.RNG) time.Duration
	Mean() time.Duration
}

// CellPicker chooses the next cell of a migration.
type CellPicker interface {
	// Next returns the cell an MH migrates to from cur. Implementations
	// must return a cell different from cur when more than one cell
	// exists.
	Next(rng *sim.RNG, cur ids.MSS) ids.MSS
}

// UniformCells migrates to any other cell with equal probability —
// the "random communication" pattern of the authors' prototype (§5).
type UniformCells struct {
	Cells []ids.MSS
}

// Next picks uniformly among the other cells.
func (u UniformCells) Next(rng *sim.RNG, cur ids.MSS) ids.MSS {
	if len(u.Cells) <= 1 {
		return cur
	}
	for {
		c := u.Cells[rng.Intn(len(u.Cells))]
		if c != cur {
			return c
		}
	}
}

// RingWalk moves to an adjacent cell on a ring of cells, modelling
// geographic adjacency (a vehicle crossing neighbouring cells).
type RingWalk struct {
	Cells []ids.MSS
}

// Next moves one step left or right on the ring.
func (r RingWalk) Next(rng *sim.RNG, cur ids.MSS) ids.MSS {
	n := len(r.Cells)
	if n <= 1 {
		return cur
	}
	idx := 0
	for i, c := range r.Cells {
		if c == cur {
			idx = i
			break
		}
	}
	if rng.Prob(0.5) {
		return r.Cells[(idx+1)%n]
	}
	return r.Cells[(idx+n-1)%n]
}

// PingPong oscillates between two cells — the adversarial pattern that
// maximizes hand-off churn.
type PingPong struct {
	A, B ids.MSS
}

// Next returns the other cell.
func (p PingPong) Next(_ *sim.RNG, cur ids.MSS) ids.MSS {
	if cur == p.A {
		return p.B
	}
	return p.A
}

// Markov picks the next cell from a row-stochastic transition matrix
// over Cells. Self-transitions are re-drawn (a migration always changes
// cells); rows that would only self-transition fall back to uniform.
type Markov struct {
	Cells []ids.MSS
	P     [][]float64
}

// Validate checks matrix shape and row sums.
func (m Markov) Validate() error {
	if len(m.P) != len(m.Cells) {
		return fmt.Errorf("workload: Markov P has %d rows for %d cells", len(m.P), len(m.Cells))
	}
	for i, row := range m.P {
		if len(row) != len(m.Cells) {
			return fmt.Errorf("workload: Markov row %d has %d entries for %d cells", i, len(row), len(m.Cells))
		}
		sum := 0.0
		for _, p := range row {
			if p < 0 {
				return fmt.Errorf("workload: Markov row %d has negative probability", i)
			}
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			return fmt.Errorf("workload: Markov row %d sums to %g", i, sum)
		}
	}
	return nil
}

// Next draws from the row of cur.
func (m Markov) Next(rng *sim.RNG, cur ids.MSS) ids.MSS {
	row := -1
	for i, c := range m.Cells {
		if c == cur {
			row = i
			break
		}
	}
	if row == -1 {
		return UniformCells{Cells: m.Cells}.Next(rng, cur)
	}
	for attempt := 0; attempt < 16; attempt++ {
		x := rng.Float64()
		acc := 0.0
		for j, p := range m.P[row] {
			acc += p
			if x < acc {
				if m.Cells[j] == cur {
					break // self-transition: re-draw
				}
				return m.Cells[j]
			}
		}
	}
	return UniformCells{Cells: m.Cells}.Next(rng, cur)
}

// EventKind classifies itinerary events.
type EventKind uint8

// Itinerary event kinds.
const (
	EvMigrate EventKind = iota + 1
	EvDeactivate
	EvActivate
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvMigrate:
		return "migrate"
	case EvDeactivate:
		return "deactivate"
	default:
		return "activate"
	}
}

// Event is one itinerary step for a mobile host.
type Event struct {
	At   time.Duration // offset from itinerary start
	Kind EventKind
	Cell ids.MSS // destination cell for EvMigrate; current cell otherwise
}

// Mobility parameterizes itinerary generation for one MH.
type Mobility struct {
	// Picker chooses destination cells.
	Picker CellPicker
	// Residence samples the time spent in a cell before the next event.
	Residence Sampler
	// InactiveProb is the probability that, at the end of a residence
	// period, the MH goes inactive (power save) instead of migrating.
	InactiveProb float64
	// InactiveDur samples the length of inactivity periods. While
	// inactive the MH may still be carried to a new cell (it wakes up
	// elsewhere) with probability MoveWhileInactive.
	InactiveDur       Sampler
	MoveWhileInactive float64
}

// Itinerary generates the mobility events of one MH starting in cell
// start, covering [0, horizon). The MH begins active.
func Itinerary(rng *sim.RNG, cfg Mobility, start ids.MSS, horizon time.Duration) []Event {
	if cfg.Picker == nil || cfg.Residence == nil {
		panic("workload: Mobility requires Picker and Residence")
	}
	var (
		events []Event
		now    time.Duration
		cell   = start
	)
	for {
		now += cfg.Residence.Sample(rng)
		if now >= horizon {
			return events
		}
		if cfg.InactiveDur != nil && rng.Prob(cfg.InactiveProb) {
			events = append(events, Event{At: now, Kind: EvDeactivate, Cell: cell})
			now += cfg.InactiveDur.Sample(rng)
			if rng.Prob(cfg.MoveWhileInactive) {
				cell = cfg.Picker.Next(rng, cell)
			}
			if now >= horizon {
				return events
			}
			events = append(events, Event{At: now, Kind: EvActivate, Cell: cell})
			continue
		}
		cell = cfg.Picker.Next(rng, cell)
		events = append(events, Event{At: now, Kind: EvMigrate, Cell: cell})
	}
}

// Requests parameterizes request generation for one MH.
type Requests struct {
	// Interarrival samples gaps between consecutive requests
	// (Exponential yields a Poisson process).
	Interarrival Sampler
	// Servers are the candidate targets; each request picks uniformly.
	Servers []ids.Server
	// PayloadBytes sizes the synthetic request body.
	PayloadBytes int
}

// Arrival is one generated request.
type Arrival struct {
	At      time.Duration
	Server  ids.Server
	Payload []byte
}

// Schedule generates the request arrivals of one MH over [0, horizon).
func Schedule(rng *sim.RNG, cfg Requests, horizon time.Duration) []Arrival {
	if cfg.Interarrival == nil || len(cfg.Servers) == 0 {
		panic("workload: Requests requires Interarrival and Servers")
	}
	var (
		out []Arrival
		now time.Duration
	)
	for {
		gap := cfg.Interarrival.Sample(rng)
		if gap <= 0 {
			gap = time.Nanosecond // guarantee progress
		}
		now += gap
		if now >= horizon {
			return out
		}
		payload := make([]byte, cfg.PayloadBytes)
		for i := range payload {
			payload[i] = byte(rng.Intn(256))
		}
		out = append(out, Arrival{
			At:      now,
			Server:  cfg.Servers[rng.Intn(len(cfg.Servers))],
			Payload: payload,
		})
	}
}

// GridWalk moves on a Width×Height Manhattan grid of cells with
// 4-neighborhood steps — the city-street mobility of the SIDAM scenario.
// Cells is indexed row-major: Cells[y*Width+x].
type GridWalk struct {
	Cells  []ids.MSS
	Width  int
	Height int
}

// Validate checks the grid shape.
func (g GridWalk) Validate() error {
	if g.Width < 1 || g.Height < 1 {
		return fmt.Errorf("workload: GridWalk %dx%d is degenerate", g.Width, g.Height)
	}
	if len(g.Cells) != g.Width*g.Height {
		return fmt.Errorf("workload: GridWalk has %d cells for a %dx%d grid", len(g.Cells), g.Width, g.Height)
	}
	return nil
}

// Next moves one step up/down/left/right, staying on the grid.
func (g GridWalk) Next(rng *sim.RNG, cur ids.MSS) ids.MSS {
	if g.Width*g.Height <= 1 {
		return cur
	}
	idx := 0
	for i, c := range g.Cells {
		if c == cur {
			idx = i
			break
		}
	}
	x, y := idx%g.Width, idx/g.Width
	type step struct{ dx, dy int }
	var options []step
	if x > 0 {
		options = append(options, step{-1, 0})
	}
	if x < g.Width-1 {
		options = append(options, step{1, 0})
	}
	if y > 0 {
		options = append(options, step{0, -1})
	}
	if y < g.Height-1 {
		options = append(options, step{0, 1})
	}
	s := options[rng.Intn(len(options))]
	return g.Cells[(y+s.dy)*g.Width+(x+s.dx)]
}
