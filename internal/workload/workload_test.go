package workload

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func cells(n int) []ids.MSS {
	out := make([]ids.MSS, n)
	for i := range out {
		out[i] = ids.MSS(i + 1)
	}
	return out
}

func TestUniformCellsNeverSelf(t *testing.T) {
	rng := sim.NewRNG(1)
	p := UniformCells{Cells: cells(5)}
	for i := 0; i < 1000; i++ {
		cur := ids.MSS(rng.Intn(5) + 1)
		if next := p.Next(rng, cur); next == cur {
			t.Fatal("UniformCells returned the current cell")
		}
	}
}

func TestUniformCellsSingleCell(t *testing.T) {
	rng := sim.NewRNG(1)
	p := UniformCells{Cells: cells(1)}
	if got := p.Next(rng, 1); got != 1 {
		t.Errorf("single-cell Next = %v, want 1", got)
	}
}

func TestRingWalkAdjacency(t *testing.T) {
	rng := sim.NewRNG(2)
	p := RingWalk{Cells: cells(6)}
	for i := 0; i < 1000; i++ {
		cur := ids.MSS(rng.Intn(6) + 1)
		next := p.Next(rng, cur)
		d := int(next) - int(cur)
		if d < 0 {
			d = -d
		}
		if d != 1 && d != 5 { // neighbour or ring wrap
			t.Fatalf("RingWalk jumped from %v to %v", cur, next)
		}
	}
}

func TestPingPong(t *testing.T) {
	p := PingPong{A: 1, B: 2}
	if p.Next(nil, 1) != 2 || p.Next(nil, 2) != 1 {
		t.Error("PingPong must alternate")
	}
}

func TestMarkovValidate(t *testing.T) {
	m := Markov{Cells: cells(2), P: [][]float64{{0, 1}, {1, 0}}}
	if err := m.Validate(); err != nil {
		t.Errorf("valid matrix rejected: %v", err)
	}
	bad := Markov{Cells: cells(2), P: [][]float64{{0.5, 0.2}, {1, 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("row not summing to 1 accepted")
	}
	neg := Markov{Cells: cells(2), P: [][]float64{{-1, 2}, {1, 0}}}
	if err := neg.Validate(); err == nil {
		t.Error("negative probability accepted")
	}
	shape := Markov{Cells: cells(2), P: [][]float64{{1}}}
	if err := shape.Validate(); err == nil {
		t.Error("bad shape accepted")
	}
}

func TestMarkovFollowsMatrix(t *testing.T) {
	rng := sim.NewRNG(3)
	// From cell 1, always go to cell 3.
	m := Markov{Cells: cells(3), P: [][]float64{
		{0, 0, 1},
		{1, 0, 0},
		{0, 1, 0},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := m.Next(rng, 1); got != 3 {
			t.Fatalf("Markov from cell1 = %v, want mss3", got)
		}
	}
}

func TestMarkovNeverSelfTransitions(t *testing.T) {
	rng := sim.NewRNG(4)
	// Heavy self-loop: must still move.
	m := Markov{Cells: cells(3), P: [][]float64{
		{0.9, 0.05, 0.05},
		{0.05, 0.9, 0.05},
		{0.05, 0.05, 0.9},
	}}
	for i := 0; i < 500; i++ {
		cur := ids.MSS(rng.Intn(3) + 1)
		if got := m.Next(rng, cur); got == cur {
			t.Fatal("Markov migration returned the current cell")
		}
	}
}

func TestMarkovUnknownCellFallsBack(t *testing.T) {
	rng := sim.NewRNG(5)
	m := Markov{Cells: cells(3), P: [][]float64{{0, 1, 0}, {1, 0, 0}, {1, 0, 0}}}
	if got := m.Next(rng, 99); got == 99 {
		t.Error("unknown cell should fall back to uniform pick")
	}
}

func TestItineraryWithinHorizonAndOrdered(t *testing.T) {
	rng := sim.NewRNG(6)
	cfg := Mobility{
		Picker:            UniformCells{Cells: cells(4)},
		Residence:         netsim.Exponential{MeanDelay: 10 * time.Second},
		InactiveProb:      0.3,
		InactiveDur:       netsim.Exponential{MeanDelay: 20 * time.Second},
		MoveWhileInactive: 0.5,
	}
	ev := Itinerary(rng, cfg, 1, 10*time.Minute)
	if len(ev) == 0 {
		t.Fatal("no events generated")
	}
	var last time.Duration
	for i, e := range ev {
		if e.At < last {
			t.Fatalf("event %d at %v before previous %v", i, e.At, last)
		}
		last = e.At
		if e.At >= 10*time.Minute {
			t.Fatalf("event %d at %v beyond horizon", i, e.At)
		}
	}
}

func TestItineraryActivityAlternates(t *testing.T) {
	rng := sim.NewRNG(7)
	cfg := Mobility{
		Picker:       UniformCells{Cells: cells(3)},
		Residence:    netsim.Constant(5 * time.Second),
		InactiveProb: 1.0, // always deactivate
		InactiveDur:  netsim.Constant(2 * time.Second),
	}
	ev := Itinerary(rng, cfg, 1, time.Minute)
	active := true
	for i, e := range ev {
		switch e.Kind {
		case EvDeactivate:
			if !active {
				t.Fatalf("event %d: deactivate while inactive", i)
			}
			active = false
		case EvActivate:
			if active {
				t.Fatalf("event %d: activate while active", i)
			}
			active = true
		case EvMigrate:
			if !active {
				t.Fatalf("event %d: migrate while inactive", i)
			}
		}
	}
}

func TestItineraryMigrationTargetsDiffer(t *testing.T) {
	rng := sim.NewRNG(8)
	cfg := Mobility{
		Picker:    RingWalk{Cells: cells(5)},
		Residence: netsim.Constant(time.Second),
	}
	ev := Itinerary(rng, cfg, 1, time.Minute)
	cur := ids.MSS(1)
	for i, e := range ev {
		if e.Kind != EvMigrate {
			continue
		}
		if e.Cell == cur {
			t.Fatalf("event %d migrates to the current cell %v", i, cur)
		}
		cur = e.Cell
	}
}

func TestItineraryDeterministic(t *testing.T) {
	cfg := Mobility{
		Picker:       UniformCells{Cells: cells(4)},
		Residence:    netsim.Exponential{MeanDelay: 3 * time.Second},
		InactiveProb: 0.2,
		InactiveDur:  netsim.Constant(time.Second),
	}
	a := Itinerary(sim.NewRNG(9), cfg, 1, time.Minute)
	b := Itinerary(sim.NewRNG(9), cfg, 1, time.Minute)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("itineraries diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestItineraryPanicsWithoutPicker(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("missing Picker must panic")
		}
	}()
	Itinerary(sim.NewRNG(1), Mobility{Residence: netsim.Constant(time.Second)}, 1, time.Minute)
}

func TestSchedulePoissonRate(t *testing.T) {
	rng := sim.NewRNG(10)
	cfg := Requests{
		Interarrival: netsim.Exponential{MeanDelay: time.Second},
		Servers:      []ids.Server{1, 2},
		PayloadBytes: 16,
	}
	horizon := 30 * time.Minute
	arr := Schedule(rng, cfg, horizon)
	want := float64(horizon) / float64(time.Second)
	got := float64(len(arr))
	if got < 0.9*want || got > 1.1*want {
		t.Errorf("arrivals = %v, want ~%v", got, want)
	}
	for i, a := range arr {
		if a.At >= horizon {
			t.Fatalf("arrival %d beyond horizon", i)
		}
		if len(a.Payload) != 16 {
			t.Fatalf("arrival %d payload %d bytes, want 16", i, len(a.Payload))
		}
		if a.Server != 1 && a.Server != 2 {
			t.Fatalf("arrival %d server %v not in candidate set", i, a.Server)
		}
		if i > 0 && a.At < arr[i-1].At {
			t.Fatalf("arrival %d out of order", i)
		}
	}
}

func TestScheduleZeroGapProgress(t *testing.T) {
	rng := sim.NewRNG(11)
	cfg := Requests{
		Interarrival: netsim.Constant(0), // degenerate: zero gap
		Servers:      []ids.Server{1},
	}
	arr := Schedule(rng, cfg, 10*time.Nanosecond)
	if len(arr) == 0 || len(arr) > 10 {
		t.Fatalf("zero-gap schedule produced %d arrivals", len(arr))
	}
}

func TestSchedulePanicsWithoutServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("missing Servers must panic")
		}
	}()
	Schedule(sim.NewRNG(1), Requests{Interarrival: netsim.Constant(time.Second)}, time.Minute)
}

func TestEventKindString(t *testing.T) {
	if EvMigrate.String() != "migrate" || EvDeactivate.String() != "deactivate" || EvActivate.String() != "activate" {
		t.Error("EventKind names wrong")
	}
}

func TestGridWalkValidate(t *testing.T) {
	if err := (GridWalk{Cells: cells(6), Width: 3, Height: 2}).Validate(); err != nil {
		t.Errorf("valid grid rejected: %v", err)
	}
	if err := (GridWalk{Cells: cells(5), Width: 3, Height: 2}).Validate(); err == nil {
		t.Error("mismatched cell count accepted")
	}
	if err := (GridWalk{Width: 0, Height: 2}).Validate(); err == nil {
		t.Error("degenerate grid accepted")
	}
}

func TestGridWalkStaysAdjacent(t *testing.T) {
	rng := sim.NewRNG(12)
	g := GridWalk{Cells: cells(12), Width: 4, Height: 3}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cur := g.Cells[0]
	for i := 0; i < 2000; i++ {
		next := g.Next(rng, cur)
		if next == cur {
			t.Fatalf("step %d: no movement", i)
		}
		ci, ni := -1, -1
		for j, c := range g.Cells {
			if c == cur {
				ci = j
			}
			if c == next {
				ni = j
			}
		}
		cx, cy := ci%4, ci/4
		nx, ny := ni%4, ni/4
		if abs(cx-nx)+abs(cy-ny) != 1 {
			t.Fatalf("step %d: %v -> %v is not a grid neighbour", i, cur, next)
		}
		cur = next
	}
}

func TestGridWalkCoversGrid(t *testing.T) {
	rng := sim.NewRNG(13)
	g := GridWalk{Cells: cells(9), Width: 3, Height: 3}
	visited := make(map[ids.MSS]bool)
	cur := g.Cells[4] // center
	for i := 0; i < 5000; i++ {
		cur = g.Next(rng, cur)
		visited[cur] = true
	}
	if len(visited) != 9 {
		t.Errorf("random walk visited %d of 9 cells", len(visited))
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
