// Package server provides the wired-network application servers of the
// system model (§2): fixed-address services that process requests —
// possibly slowly, as in the SIDAM traffic-information scenario whose
// "queries may eventually require time-consuming data location and
// retrieval protocols" — and reply to whoever asked. Under RDP the asker
// is always a proxy, so "from the server's point of view, the service is
// being requested from a fixed client" (§5).
//
// The package also provides the directory service through which clients
// obtain server addresses (§2).
package server

import (
	"fmt"
	"sort"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Handler computes a reply payload for a request payload. It runs after
// the configured processing delay has elapsed.
type Handler func(req []byte) []byte

// Echo is the default handler: it returns the request payload prefixed
// with "re:".
func Echo(req []byte) []byte {
	out := make([]byte, 0, len(req)+3)
	out = append(out, "re:"...)
	return append(out, req...)
}

// AppServer is one application server on the wired network.
type AppServer struct {
	id      ids.Server
	kernel  sim.Scheduler
	wired   netsim.WiredTransport
	proc    netsim.LatencyModel
	rng     *sim.RNG
	handler Handler

	// pending maps an in-service request to the proxy the reply must go
	// to. A pref_redirect can rebind the entry while the request is still
	// processing (its proxy migrated), so the reply chases the proxy's
	// new home instead of the tombstone.
	pending map[ids.RequestID]ids.ProxyID

	// Served counts completed requests; Acked counts application-level
	// acks received from proxies.
	Served metrics.Counter
	Acked  metrics.Counter
}

// New constructs a server. proc models per-request processing time; a
// nil handler defaults to Echo.
func New(id ids.Server, kernel sim.Scheduler, wired netsim.WiredTransport, proc netsim.LatencyModel, handler Handler) *AppServer {
	if proc == nil {
		proc = netsim.Constant(0)
	}
	if handler == nil {
		handler = Echo
	}
	return &AppServer{
		id:      id,
		kernel:  kernel,
		wired:   wired,
		proc:    proc,
		rng:     kernel.RNG().Fork(),
		handler: handler,
		pending: make(map[ids.RequestID]ids.ProxyID),
	}
}

// ID returns the server identifier.
func (s *AppServer) ID() ids.Server { return s.id }

// SetHandler replaces the request handler (used by the SIDAM substrate
// to plug query processing into a generic server).
func (s *AppServer) SetHandler(h Handler) { s.handler = h }

// HandleMessage implements netsim.Handler: process ServerRequest after
// the sampled processing delay and reply to the proxy's hosting station;
// record ServerAck.
func (s *AppServer) HandleMessage(from ids.NodeID, m msg.Message) {
	switch v := m.(type) {
	case msg.ServerRequest:
		s.pending[v.Req] = v.Proxy
		delay := s.proc.Sample(s.rng)
		s.kernel.Defer(delay, func() {
			s.Served.Inc()
			reply := s.handler(v.Payload)
			// Read the live binding: a pref_redirect may have rebound it
			// while the request was processing. A duplicate re-request
			// (recovery) whose entry was already consumed replies to the
			// proxy it named, matching the pre-migration behavior.
			to, ok := s.pending[v.Req]
			if !ok {
				to = v.Proxy
			}
			delete(s.pending, v.Req)
			s.wired.Send(s.id.Node(), to.Host.Node(),
				msg.ServerResult{Proxy: to, Req: v.Req, Payload: reply})
		})
	case msg.PrefRedirect:
		if v.Confirm {
			return // echoes are station-bound; ignore a misdelivered one
		}
		if p, ok := s.pending[v.Req]; ok && p == v.OldProxy {
			s.pending[v.Req] = v.NewProxy
		}
		// Always confirm, even when the reply already left (the tombstone
		// redirects it): the old host blocks tombstone GC on this echo.
		v.Confirm = true
		s.wired.Send(s.id.Node(), v.OldProxy.Host.Node(), v)
	case msg.ServerAck:
		s.Acked.Inc()
	}
}

// Directory is the name service of §2: "each server maintains a fixed
// address which can be obtained by querying a directory service".
type Directory struct {
	byName map[string]ids.Server
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{byName: make(map[string]ids.Server)}
}

// Register binds a name to a server; re-registering a name overwrites.
func (d *Directory) Register(name string, s ids.Server) { d.byName[name] = s }

// Lookup resolves a name.
func (d *Directory) Lookup(name string) (ids.Server, error) {
	s, ok := d.byName[name]
	if !ok {
		return ids.NoServer, fmt.Errorf("directory: no server named %q", name)
	}
	return s, nil
}

// Names lists registered names in sorted order.
func (d *Directory) Names() []string {
	out := make([]string, 0, len(d.byName))
	for n := range d.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
