package server

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func testNet(t *testing.T) (*sim.Kernel, *netsim.Wired) {
	t.Helper()
	k := sim.NewKernel(1)
	members := []ids.NodeID{ids.MSS(1).Node(), ids.Server(1).Node()}
	w := netsim.NewWired(k, members, netsim.WiredConfig{Latency: netsim.Constant(time.Millisecond), Causal: true}, nil)
	return k, w
}

func TestServerRepliesToProxyHost(t *testing.T) {
	k, w := testNet(t)
	srv := New(1, k, w, netsim.Constant(10*time.Millisecond), nil)
	w.Register(ids.Server(1).Node(), srv)
	var got []msg.Message
	w.Register(ids.MSS(1).Node(), netsim.HandlerFunc(func(from ids.NodeID, m msg.Message) {
		got = append(got, m)
	}))

	prx := ids.ProxyID{Host: 1, Seq: 1}
	req := ids.RequestID{Origin: 7, Seq: 1}
	w.Send(ids.MSS(1).Node(), ids.Server(1).Node(), msg.ServerRequest{Proxy: prx, Req: req, Payload: []byte("q")})
	k.Run()

	if len(got) != 1 {
		t.Fatalf("proxy host received %d messages, want 1", len(got))
	}
	res, ok := got[0].(msg.ServerResult)
	if !ok {
		t.Fatalf("got %T, want ServerResult", got[0])
	}
	if res.Proxy != prx || res.Req != req {
		t.Errorf("reply addressed %v/%v, want %v/%v", res.Proxy, res.Req, prx, req)
	}
	if string(res.Payload) != "re:q" {
		t.Errorf("payload = %q, want echo %q", res.Payload, "re:q")
	}
	if srv.Served.Value() != 1 {
		t.Errorf("Served = %d, want 1", srv.Served.Value())
	}
	// Processing delay + two 1ms hops.
	if k.Now() != sim.Time(12*time.Millisecond) {
		t.Errorf("completion at %v, want 12ms", k.Now())
	}
}

func TestServerCustomHandler(t *testing.T) {
	k, w := testNet(t)
	srv := New(1, k, w, nil, func(req []byte) []byte { return []byte("fixed") })
	w.Register(ids.Server(1).Node(), srv)
	var payload []byte
	w.Register(ids.MSS(1).Node(), netsim.HandlerFunc(func(_ ids.NodeID, m msg.Message) {
		payload = m.(msg.ServerResult).Payload
	}))
	w.Send(ids.MSS(1).Node(), ids.Server(1).Node(), msg.ServerRequest{
		Proxy: ids.ProxyID{Host: 1, Seq: 1}, Req: ids.RequestID{Origin: 1, Seq: 1},
	})
	k.Run()
	if string(payload) != "fixed" {
		t.Errorf("payload = %q, want %q", payload, "fixed")
	}
}

func TestServerSetHandler(t *testing.T) {
	k, w := testNet(t)
	srv := New(1, k, w, nil, nil)
	w.Register(ids.Server(1).Node(), srv)
	srv.SetHandler(func([]byte) []byte { return []byte("swapped") })
	var payload []byte
	w.Register(ids.MSS(1).Node(), netsim.HandlerFunc(func(_ ids.NodeID, m msg.Message) {
		payload = m.(msg.ServerResult).Payload
	}))
	w.Send(ids.MSS(1).Node(), ids.Server(1).Node(), msg.ServerRequest{
		Proxy: ids.ProxyID{Host: 1, Seq: 1}, Req: ids.RequestID{Origin: 1, Seq: 1},
	})
	k.Run()
	if string(payload) != "swapped" {
		t.Errorf("payload = %q, want %q", payload, "swapped")
	}
}

func TestServerCountsAcks(t *testing.T) {
	k, w := testNet(t)
	srv := New(1, k, w, nil, nil)
	w.Register(ids.Server(1).Node(), srv)
	w.Register(ids.MSS(1).Node(), netsim.HandlerFunc(func(ids.NodeID, msg.Message) {}))
	w.Send(ids.MSS(1).Node(), ids.Server(1).Node(), msg.ServerAck{Req: ids.RequestID{Origin: 1, Seq: 1}})
	k.Run()
	if srv.Acked.Value() != 1 {
		t.Errorf("Acked = %d, want 1", srv.Acked.Value())
	}
}

func TestEcho(t *testing.T) {
	if got := string(Echo([]byte("abc"))); got != "re:abc" {
		t.Errorf("Echo = %q", got)
	}
	if got := string(Echo(nil)); got != "re:" {
		t.Errorf("Echo(nil) = %q", got)
	}
}

func TestDirectory(t *testing.T) {
	d := NewDirectory()
	if _, err := d.Lookup("traffic"); err == nil {
		t.Error("lookup on empty directory should fail")
	}
	d.Register("traffic", 1)
	d.Register("weather", 2)
	s, err := d.Lookup("traffic")
	if err != nil || s != 1 {
		t.Errorf("Lookup = %v,%v", s, err)
	}
	d.Register("traffic", 3) // overwrite
	if s, _ := d.Lookup("traffic"); s != 3 {
		t.Errorf("overwritten Lookup = %v, want 3", s)
	}
	names := d.Names()
	if len(names) != 2 || names[0] != "traffic" || names[1] != "weather" {
		t.Errorf("Names = %v", names)
	}
}
