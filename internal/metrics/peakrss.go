package metrics

import (
	"os"
	"strconv"
	"strings"
)

// PeakRSS returns the process resident-set high-water mark in bytes
// (VmHWM from /proc/self/status) and whether the probe is available on
// this platform. Callers must treat ok=false as "unavailable" and say
// so (print "n/a"), rather than substituting a lookalike number: the
// Go runtime's own counters measure the heap, not the process, and a
// silent fallback would let an experiment table mix the two scales on
// different machines without any visible marker.
func PeakRSS() (bytes uint64, ok bool) {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb * 1024, true
	}
	return 0, false
}

// FormatBytes renders a byte count as a human-readable quantity for
// experiment tables ("2.9GB", "412MB"), or "n/a" when ok is false —
// the explicit unavailable marker for platforms without a peak-RSS
// probe.
func FormatBytes(bytes uint64, ok bool) string {
	if !ok {
		return "n/a"
	}
	const (
		kb = 1 << 10
		mb = 1 << 20
		gb = 1 << 30
	)
	switch {
	case bytes >= gb:
		return strconv.FormatFloat(float64(bytes)/gb, 'f', 1, 64) + "GB"
	case bytes >= mb:
		return strconv.FormatFloat(float64(bytes)/mb, 'f', 0, 64) + "MB"
	case bytes >= kb:
		return strconv.FormatFloat(float64(bytes)/kb, 'f', 0, 64) + "KB"
	default:
		return strconv.FormatUint(bytes, 10) + "B"
	}
}
