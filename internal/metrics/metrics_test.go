package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestCounterNegativeDeltaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delta must panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestHistogramMeanAndQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Errorf("Mean = %v, want 50.5ms", got)
	}
	if got := h.Quantile(0.5); got != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", got)
	}
	if got := h.Quantile(0.95); got != 95*time.Millisecond {
		t.Errorf("p95 = %v, want 95ms", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Errorf("Max = %v, want 100ms", got)
	}
	if got := h.Quantile(0); got != time.Millisecond {
		t.Errorf("p0 = %v, want 1ms", got)
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Second)
	_ = h.Quantile(0.5)
	h.Observe(1 * time.Second) // must re-sort
	if got := h.Quantile(0); got != time.Second {
		t.Errorf("min after late observe = %v, want 1s", got)
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32, q1f, q2f float64) bool {
		if len(raw) == 0 {
			return true
		}
		q1 := math.Abs(math.Mod(q1f, 1))
		q2 := math.Abs(math.Mod(q2f, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		var h Histogram
		for _, r := range raw {
			h.Observe(time.Duration(r))
		}
		return h.Quantile(q1) <= h.Quantile(q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestJainIndex(t *testing.T) {
	tests := []struct {
		name  string
		loads []float64
		want  float64
	}{
		{"even", []float64{5, 5, 5, 5}, 1.0},
		{"concentrated", []float64{10, 0, 0, 0}, 0.25},
		{"empty", nil, 1.0},
		{"all-zero", []float64{0, 0}, 1.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := JainIndex(tt.loads); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("JainIndex = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestJainIndexBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		loads := make([]float64, len(raw))
		for i, r := range raw {
			loads[i] = float64(r)
		}
		j := JainIndex(loads)
		return j >= 1/float64(len(loads))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMaxOverMean(t *testing.T) {
	if got := MaxOverMean([]float64{2, 2, 2}); math.Abs(got-1) > 1e-9 {
		t.Errorf("balanced MaxOverMean = %v, want 1", got)
	}
	if got := MaxOverMean([]float64{9, 0, 0}); math.Abs(got-3) > 1e-9 {
		t.Errorf("concentrated MaxOverMean = %v, want 3", got)
	}
	if got := MaxOverMean(nil); got != 0 {
		t.Errorf("empty MaxOverMean = %v, want 0", got)
	}
	if got := MaxOverMean([]float64{0}); got != 0 {
		t.Errorf("zero MaxOverMean = %v, want 0", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("col", "value")
	tbl.AddRow("a", "1")
	tbl.AddRow("longer", "2")
	tbl.AddRow("short") // missing cell
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "col") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator missing: %q", lines[1])
	}
	// Columns must be aligned: "value" column starts at the same offset
	// in every row.
	off := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][off:], "1") {
		t.Errorf("misaligned row: %q", lines[2])
	}
}

func TestHistogramSummaryMentionsCount(t *testing.T) {
	var h Histogram
	h.Observe(time.Second)
	if s := h.Summary(); !strings.Contains(s, "n=1") {
		t.Errorf("Summary = %q", s)
	}
}

// TestCounterConcurrent hammers one counter from many goroutines; the
// race detector (make test-race) is the real assertion, the final value
// the sanity check.
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					c.Inc()
				} else {
					c.Add(1)
				}
				_ = c.Value()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("Value = %d, want %d", got, goroutines*perG)
	}
}

func TestPeak(t *testing.T) {
	var p Peak
	if p.Value() != 0 {
		t.Fatal("zero value not zero")
	}
	p.Observe(5)
	p.Observe(3)
	p.Observe(9)
	p.Observe(9)
	if got := p.Value(); got != 9 {
		t.Errorf("Value = %d, want 9", got)
	}
}

func TestPeakConcurrent(t *testing.T) {
	var p Peak
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Observe(int64(g*1000 + i))
			}
		}()
	}
	wg.Wait()
	if got := p.Value(); got != 7999 {
		t.Errorf("Value = %d, want 7999", got)
	}
}

// TestHistogramBoundedMemory feeds far more samples than the reservoir
// holds: retention must stay capped while Count/Mean/Max stay exact.
func TestHistogramBoundedMemory(t *testing.T) {
	var h Histogram
	const total = 10 * reservoirCap
	for i := 1; i <= total; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if got := len(h.samples); got > reservoirCap {
		t.Errorf("retained %d samples, cap is %d", got, reservoirCap)
	}
	if got := h.Count(); got != total {
		t.Errorf("Count = %d, want %d", got, total)
	}
	wantMean := time.Duration(total+1) * time.Microsecond / 2
	if got := h.Mean(); got != wantMean {
		t.Errorf("Mean = %v, want %v", got, wantMean)
	}
	if got := h.Max(); got != total*time.Microsecond {
		t.Errorf("Max = %v, want %v", got, total*time.Microsecond)
	}
}

// TestHistogramReservoirQuantileTolerance checks the sampled quantiles
// track the true ones on a known uniform distribution.
func TestHistogramReservoirQuantileTolerance(t *testing.T) {
	var h Histogram
	const total = 5 * reservoirCap
	for i := 1; i <= total; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := float64(h.Quantile(q))
		want := q * total * float64(time.Microsecond)
		if math.Abs(got-want) > 0.05*total*float64(time.Microsecond) {
			t.Errorf("Quantile(%v) = %v, want %v ±5%%", q, time.Duration(got), time.Duration(want))
		}
	}
	if got := h.Quantile(1); got != total*time.Microsecond {
		t.Errorf("Quantile(1) = %v, want exact max %v", got, total*time.Microsecond)
	}
}

// TestHistogramReservoirDeterministic: same observation sequence, same
// quantiles — the eviction RNG must not depend on process state.
func TestHistogramReservoirDeterministic(t *testing.T) {
	run := func() [3]time.Duration {
		var h Histogram
		for i := 0; i < 3*reservoirCap; i++ {
			h.Observe(time.Duration(i*7919%100000) * time.Microsecond)
		}
		return [3]time.Duration{h.Quantile(0.5), h.Quantile(0.99), h.Max()}
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same sequence diverged: %v vs %v", a, b)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("a", "b")
	tbl.AddRow("1", "plain")
	tbl.AddRow("2", `with,comma and "quote"`)
	got := tbl.CSV()
	want := "a,b\n1,plain\n2,\"with,comma and \"\"quote\"\"\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
