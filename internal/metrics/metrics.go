// Package metrics provides the measurement primitives used by the
// experiment harness: counters, duration histograms with quantile
// queries, and the Jain fairness index used by the load-balancing
// experiment (E5).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use. Counters are safe for concurrent use: the simulated
// worlds mutate them from the single kernel goroutine, but the tcpnet
// substrate shares them across its socket read loops.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (which must be >= 0).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative counter delta")
	}
	c.n.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Peak is a high-watermark gauge: it remembers the largest value ever
// observed. The zero value is ready to use and, like Counter, it is safe
// for concurrent use.
type Peak struct {
	v atomic.Int64
}

// Observe raises the watermark to v if v exceeds it.
func (p *Peak) Observe(v int64) {
	for {
		cur := p.v.Load()
		if v <= cur || p.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the largest value observed, or 0 if none.
func (p *Peak) Value() int64 { return p.v.Load() }

// reservoirCap bounds the samples a Histogram retains. Runs below the
// cap get exact quantiles; above it, Algorithm R keeps a uniform sample
// (driven by a deterministic generator, so equal observation sequences
// give equal quantiles). Count, Mean and Max stay exact at any size.
const reservoirCap = 8192

// Histogram collects duration samples and answers mean/quantile queries.
// The zero value is ready to use. Memory is bounded: at most
// reservoirCap samples are retained, so overload experiments can feed a
// histogram millions of observations without it becoming the leak they
// are hunting.
type Histogram struct {
	samples []time.Duration // reservoir (exact below reservoirCap)
	n       int64           // total observations
	sum     float64
	max     time.Duration
	rng     uint64 // xorshift64 state; fixed seed keeps runs reproducible
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.n++
	h.sum += float64(d)
	if h.n == 1 || d > h.max {
		h.max = d
	}
	if len(h.samples) < reservoirCap {
		h.samples = append(h.samples, d)
		h.sorted = false
		return
	}
	// Algorithm R: keep d with probability cap/n, evicting uniformly.
	if h.rng == 0 {
		h.rng = 0x9e3779b97f4a7c15
	}
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	if j := h.rng % uint64(h.n); j < reservoirCap {
		h.samples[j] = d
		h.sorted = false
	}
}

// Count returns the number of samples observed (not retained).
func (h *Histogram) Count() int { return int(h.n) }

// Mean returns the average sample, or 0 with no samples. It is exact
// regardless of reservoir evictions.
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.n))
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank over
// the retained samples, or 0 with none. Exact while the observation
// count is within the reservoir; an unbiased estimate beyond it. The
// 1-quantile is always the exact maximum.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Max returns the largest sample, or 0 with no samples. Always exact.
func (h *Histogram) Max() time.Duration { return h.Quantile(1) }

// Summary renders count/mean/p50/p95/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// JainIndex computes the Jain fairness index of a load vector:
// (Σx)² / (n·Σx²). It is 1.0 for a perfectly even distribution and
// approaches 1/n as load concentrates on a single element. An empty or
// all-zero vector yields 1.0 (vacuously fair).
func JainIndex(loads []float64) float64 {
	if len(loads) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range loads {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(loads)) * sumSq)
}

// MaxOverMean returns max(loads)/mean(loads), another concentration
// measure reported by E5 (1.0 = perfectly balanced). It returns 0 for an
// empty or all-zero vector.
func MaxOverMean(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum, max float64
	for _, x := range loads {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 0
	}
	return max / (sum / float64(len(loads)))
}

// Table is a minimal fixed-width text table used by cmd/rdpbench to
// print experiment results in the shape of a paper table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; cells beyond the header width are dropped,
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// CSV renders the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString("\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\"")
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
