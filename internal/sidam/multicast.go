package sidam

import (
	"encoding/binary"

	"repro/internal/ids"
	"repro/internal/msg"
)

// This file implements the fourth client operation of §1, multicast:
// "The user provides its identification, the identification of a group
// of users (previously configured) and a message to be sent to the
// group."
//
// Groups are configured ahead of time (§1's "previously configured") at
// the TIS that owns the group id. Each member keeps a *mailbox request*
// parked at its mailbox TIS — an ordinary RDP request whose result is
// the member's next group message, exactly the standing-request pattern
// the paper uses for subscribe. A multicast submission routes to the
// group's owner, which serializes it (per-group sequence numbers) and
// fans one TISDeliver per member out to the members' mailbox TISes;
// messages queue there until the member parks its next mailbox request,
// so nothing is lost while a member is catching up. Because the owner
// serializes and both the wired network and each mailbox queue are
// order-preserving, every member observes each group's messages in the
// same order — the total-order property of the atomic multicast the
// paper cites ([7], Endler's Dial M '99 protocol), minus its
// membership-change machinery (groups here are static).

// Additional client operations (continuing the Op constants in
// sidam.go).
const (
	// OpMailbox parks the caller's mailbox request; the result is the
	// next group message addressed to it.
	OpMailbox Op = iota + 4
	// OpMulticast submits a message to a group; the result acknowledges
	// the fan-out with the member count.
	OpMulticast
)

// EncodeMailbox builds the payload of a mailbox request.
func EncodeMailbox() []byte {
	return encodeOp(OpMailbox, 0, 0)
}

// EncodeMulticast builds the payload of a multicast submission.
func EncodeMulticast(group uint32, data []byte) []byte {
	b := make([]byte, 5+len(data))
	b[0] = byte(OpMulticast)
	binary.BigEndian.PutUint32(b[1:], group)
	copy(b[5:], data)
	return b
}

// DecodeMulticast parses a multicast submission payload.
func DecodeMulticast(b []byte) (group uint32, data []byte, err error) {
	if len(b) < 5 || Op(b[0]) != OpMulticast {
		return 0, nil, ErrBadPayload
	}
	group = binary.BigEndian.Uint32(b[1:])
	if len(b) > 5 {
		data = append([]byte(nil), b[5:]...)
	}
	return group, data, nil
}

// groupMsgTag marks result payloads that carry a group message rather
// than a Reading.
const groupMsgTag = 0xD7 // arbitrary marker distinguishing group messages from Readings

// EncodeGroupMsg builds the result payload delivered to a member's
// mailbox request.
func EncodeGroupMsg(group uint32, seq uint64, data []byte) []byte {
	b := make([]byte, 13+len(data))
	b[0] = groupMsgTag
	binary.BigEndian.PutUint32(b[1:], group)
	binary.BigEndian.PutUint64(b[5:], seq)
	copy(b[13:], data)
	return b
}

// DecodeGroupMsg parses a mailbox result payload.
func DecodeGroupMsg(b []byte) (group uint32, seq uint64, data []byte, err error) {
	if len(b) < 13 || b[0] != groupMsgTag {
		return 0, 0, nil, ErrBadPayload
	}
	group = binary.BigEndian.Uint32(b[1:])
	seq = binary.BigEndian.Uint64(b[5:])
	if len(b) > 13 {
		data = append([]byte(nil), b[13:]...)
	}
	return group, seq, data, nil
}

// groupInfo is the owner-side state of one configured group.
type groupInfo struct {
	members []ids.MH
	nextSeq uint64
}

// mailbox is the member-side delivery point at the member's mailbox TIS.
type mailbox struct {
	parked *pendingOp       // the member's waiting mailbox request
	queue  []msg.TISDeliver // messages awaiting the next park
}

// ConfigureGroup installs a group at its owning TIS ("previously
// configured", §1). Reconfiguring a group id replaces its membership.
func (n *Network) ConfigureGroup(group uint32, members []ids.MH) {
	t := n.tises[n.GroupOwner(group)]
	if t.groups == nil {
		t.groups = make(map[uint32]*groupInfo)
	}
	t.groups[group] = &groupInfo{members: append([]ids.MH(nil), members...)}
}

// GroupOwner returns the TIS that owns (serializes) a group.
func (n *Network) GroupOwner(group uint32) ids.Server {
	return n.order[int(group)%len(n.order)]
}

// MailboxOwner returns the TIS holding a member's mailbox.
func (n *Network) MailboxOwner(mh ids.MH) ids.Server {
	return n.order[int(mh)%len(n.order)]
}

// routeOrExec sends a TISQuery toward the TIS at ownerIdx's ring slot,
// or executes exec immediately (after local processing delay) when that
// TIS is this one.
func (t *TIS) routeOrExec(owner ids.Server, q msg.TISQuery, exec func()) {
	if owner == t.id {
		delay := t.net.cfg.LocalProc.Sample(t.ensureRNG())
		t.kernel().Defer(delay, exec)
		return
	}
	t.net.Stats.RemoteOps.Inc()
	t.nextQID++
	q.QID = t.nextQID
	q.Origin = t.id
	t.forward(q)
}

// handleMailboxOp processes a client mailbox request arriving at any
// TIS: route to the member's mailbox TIS, then park or answer.
func (t *TIS) handleMailboxOp(v msg.ServerRequest) {
	member := v.Req.Origin
	owner := t.net.MailboxOwner(member)
	q := msg.TISQuery{
		Op: msg.TISOpMailbox, Region: uint32(member), Proxy: v.Proxy, Req: v.Req,
	}
	t.routeOrExec(owner, q, func() { t.parkMailbox(v.Proxy, v.Req) })
}

// handleMulticastOp processes a client multicast submission arriving at
// any TIS: route to the group's owner, then serialize and fan out.
func (t *TIS) handleMulticastOp(v msg.ServerRequest) {
	group, data, err := DecodeMulticast(v.Payload)
	if err != nil {
		t.reply(v.Proxy, v.Req, Reading{Congestion: -1})
		return
	}
	owner := t.net.GroupOwner(group)
	q := msg.TISQuery{
		Op: msg.TISOpMulticast, Region: group, Proxy: v.Proxy, Req: v.Req, Data: data,
	}
	t.routeOrExec(owner, q, func() { t.execMulticast(group, data, v.Proxy, v.Req) })
}

// parkMailbox installs (or immediately answers) a member's mailbox
// request at its mailbox TIS.
func (t *TIS) parkMailbox(proxy ids.ProxyID, req ids.RequestID) {
	member := req.Origin
	if t.mailboxes == nil {
		t.mailboxes = make(map[ids.MH]*mailbox)
	}
	mb := t.mailboxes[member]
	if mb == nil {
		mb = &mailbox{}
		t.mailboxes[member] = mb
	}
	t.net.Stats.MailboxParks.Inc()
	if len(mb.queue) > 0 {
		d := mb.queue[0]
		mb.queue = mb.queue[1:]
		t.deliverGroupMsg(proxy, req, d)
		return
	}
	if mb.parked != nil {
		// A duplicate park (client retry): keep the newest request and
		// fail the old one with an empty message so its proxy entry is
		// not stranded.
		t.reply(mb.parked.proxy, mb.parked.req, Reading{Congestion: -1})
	}
	mb.parked = &pendingOp{proxy: proxy, req: req}
}

// execMulticast serializes one group message at the owning TIS and fans
// it out to every member's mailbox TIS (§1 footnote 2).
func (t *TIS) execMulticast(group uint32, data []byte, proxy ids.ProxyID, req ids.RequestID) {
	g := t.groups[group]
	if g == nil {
		t.reply(proxy, req, Reading{Region: group, Congestion: -1})
		return
	}
	g.nextSeq++
	t.net.Stats.Multicasts.Inc()
	for _, member := range g.members {
		d := msg.TISDeliver{Member: member, Group: group, Seq: g.nextSeq, Data: data}
		owner := t.net.MailboxOwner(member)
		if owner == t.id {
			t.handleTISDeliver(d)
			continue
		}
		t.net.world.Wired.Send(t.id.Node(), owner.Node(), d)
	}
	// Acknowledge the sender with the fan-out size.
	t.reply(proxy, req, Reading{Region: group, Congestion: int32(len(g.members))})
}

// handleTISDeliver hands one serialized group message to a member's
// mailbox: answer the parked request if one waits, otherwise queue.
func (t *TIS) handleTISDeliver(d msg.TISDeliver) {
	if t.mailboxes == nil {
		t.mailboxes = make(map[ids.MH]*mailbox)
	}
	mb := t.mailboxes[d.Member]
	if mb == nil {
		mb = &mailbox{}
		t.mailboxes[d.Member] = mb
	}
	if mb.parked != nil {
		p := *mb.parked
		mb.parked = nil
		t.deliverGroupMsg(p.proxy, p.req, d)
		return
	}
	mb.queue = append(mb.queue, d)
}

// deliverGroupMsg answers a mailbox request with one group message.
func (t *TIS) deliverGroupMsg(proxy ids.ProxyID, req ids.RequestID, d msg.TISDeliver) {
	t.net.Stats.GroupDeliveries.Inc()
	t.net.world.Wired.Send(t.id.Node(), proxy.Host.Node(), msg.ServerResult{
		Proxy: proxy, Req: req, Payload: EncodeGroupMsg(d.Group, d.Seq, d.Data),
	})
}

// MailboxDepth reports a member's queued (undelivered) group messages
// at its mailbox TIS (test hook).
func (n *Network) MailboxDepth(mh ids.MH) int {
	t := n.tises[n.MailboxOwner(mh)]
	if t.mailboxes == nil || t.mailboxes[mh] == nil {
		return 0
	}
	return len(t.mailboxes[mh].queue)
}
