// Package sidam implements the paper's motivating application (§1): the
// SIDAM distributed traffic-information service for São Paulo. Traffic
// data is partitioned by city region across a network of Traffic
// Information Servers (TIS) connected in a ring; an operation arriving
// at any TIS is routed hop-by-hop to the region's owner — the
// "time-consuming data location and retrieval protocols among the
// servers" that motivate long request processing times, which in turn
// motivate RDP.
//
// The package exposes the three client operations the paper names:
//
//   - query: read a region's congestion reading;
//   - update: write a reading (the Traffic Engineering Company staff
//     feeding the system);
//   - subscribe: be notified when a region's congestion changes by at
//     least a threshold since subscription time.
//
// All three ride RDP: the client payload is encoded with this package's
// Encode* helpers into an ordinary RDP request, and results (including
// asynchronous subscription notifications) come back through the
// client's proxy. A subscription is answered by its first matching
// change — re-subscribing after each notification yields a continuous
// feed, matching RDP's one-result-per-request life-cycle.
package sidam

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
	"repro/internal/sim"
)

// Op is a client operation code.
type Op uint8

// Client operations (§1).
const (
	OpQuery Op = iota + 1
	OpUpdate
	OpSubscribe
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpQuery:
		return "query"
	case OpUpdate:
		return "update"
	case OpSubscribe:
		return "subscribe"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Reading is one region's traffic state.
type Reading struct {
	Region     uint32
	Congestion int32 // 0..100
	Stamp      int64 // virtual-time nanoseconds of the last update
}

// Request payload codec errors.
var ErrBadPayload = errors.New("sidam: malformed payload")

// EncodeQuery builds the payload of a query request.
func EncodeQuery(region uint32) []byte {
	return encodeOp(OpQuery, region, 0)
}

// EncodeUpdate builds the payload of an update request.
func EncodeUpdate(region uint32, congestion int32) []byte {
	return encodeOp(OpUpdate, region, congestion)
}

// EncodeSubscribe builds the payload of a subscription request: notify
// when the region's congestion changes by at least threshold.
func EncodeSubscribe(region uint32, threshold int32) []byte {
	return encodeOp(OpSubscribe, region, threshold)
}

func encodeOp(op Op, region uint32, value int32) []byte {
	b := make([]byte, 9)
	b[0] = byte(op)
	binary.BigEndian.PutUint32(b[1:], region)
	binary.BigEndian.PutUint32(b[5:], uint32(value))
	return b
}

// SubscribeTopic is a rdpcore.Config.GroupTopic classifier for SIDAM
// workloads: subscription requests name their region as the topic, so
// every subscriber to a region in the same cell shares one group proxy
// (identical payloads, identical notification stream). Queries and
// updates are declined and keep paper-faithful private proxies — their
// results are caller-specific.
func SubscribeTopic(_ ids.Server, payload []byte) (uint32, bool) {
	op, region, _, err := DecodeOp(payload)
	if err != nil || op != OpSubscribe {
		return 0, false
	}
	return region, true
}

// DecodeOp parses a client payload.
func DecodeOp(b []byte) (op Op, region uint32, value int32, err error) {
	if len(b) != 9 {
		return 0, 0, 0, ErrBadPayload
	}
	op = Op(b[0])
	if op != OpQuery && op != OpUpdate && op != OpSubscribe {
		return 0, 0, 0, ErrBadPayload
	}
	region = binary.BigEndian.Uint32(b[1:])
	value = int32(binary.BigEndian.Uint32(b[5:]))
	return op, region, value, nil
}

// EncodeReading builds a result payload carrying a reading.
func EncodeReading(r Reading) []byte {
	b := make([]byte, 16)
	binary.BigEndian.PutUint32(b[0:], r.Region)
	binary.BigEndian.PutUint32(b[4:], uint32(r.Congestion))
	binary.BigEndian.PutUint64(b[8:], uint64(r.Stamp))
	return b
}

// DecodeReading parses a result payload.
func DecodeReading(b []byte) (Reading, error) {
	if len(b) != 16 {
		return Reading{}, ErrBadPayload
	}
	return Reading{
		Region:     binary.BigEndian.Uint32(b[0:]),
		Congestion: int32(binary.BigEndian.Uint32(b[4:])),
		Stamp:      int64(binary.BigEndian.Uint64(b[8:])),
	}, nil
}

// Stats aggregates application-level measurements.
type Stats struct {
	Queries         metrics.Counter
	Updates         metrics.Counter
	Subscriptions   metrics.Counter
	Notifications   metrics.Counter
	Multicasts      metrics.Counter // group messages serialized at owners
	GroupDeliveries metrics.Counter // group messages answered to mailboxes
	MailboxParks    metrics.Counter
	CacheHits       metrics.Counter // remote queries served from a fresh local cache
	CacheMisses     metrics.Counter // remote queries that had to route to the owner
	RemoteOps       metrics.Counter // operations that needed inter-TIS routing
	HopsTotal       metrics.Counter // inter-TIS hops traversed
}

// Config parameterizes the TIS network.
type Config struct {
	// Regions is the number of city regions; region r is owned by TIS
	// 1 + (r mod NumTIS).
	Regions uint32
	// LocalProc models per-operation processing at the owning TIS.
	LocalProc netsim.LatencyModel
	// HopProc models per-hop forwarding work between TISes (on top of
	// wired latency).
	HopProc netsim.LatencyModel
	// InitialCongestion seeds each region's reading (drawn uniformly in
	// [0, InitialCongestion]); zero seeds everything at 0.
	InitialCongestion int32
	// CacheTTL, when positive, lets a non-owning TIS answer queries from
	// a local cache of remote readings no older than the TTL — the
	// "several forms and degrees of accuracy" trade of §1. Zero disables
	// caching (every remote query routes to the owner).
	CacheTTL time.Duration
}

// DefaultConfig returns a network of 64 regions with 20ms local
// processing and 5ms per-hop forwarding work.
func DefaultConfig() Config {
	return Config{
		Regions:           64,
		LocalProc:         netsim.Constant(20 * time.Millisecond),
		HopProc:           netsim.Constant(5 * time.Millisecond),
		InitialCongestion: 60,
	}
}

// Network is the SIDAM TIS overlay installed on an RDP world's servers.
type Network struct {
	cfg   Config
	world *rdpcore.World
	Stats *Stats
	tises map[ids.Server]*TIS
	order []ids.Server
}

// Install builds one TIS per server of the world and replaces the
// world's generic application servers with them. The world must have
// been created with at least one server.
func Install(world *rdpcore.World, cfg Config) *Network {
	if cfg.Regions == 0 {
		panic("sidam: Config.Regions must be > 0")
	}
	if cfg.LocalProc == nil {
		cfg.LocalProc = netsim.Constant(0)
	}
	if cfg.HopProc == nil {
		cfg.HopProc = netsim.Constant(0)
	}
	n := &Network{cfg: cfg, world: world, Stats: &Stats{}, tises: make(map[ids.Server]*TIS)}
	for id := range world.Servers {
		n.order = append(n.order, id)
	}
	if len(n.order) == 0 {
		panic("sidam: world has no servers to install TISes on")
	}
	// Deterministic ring order.
	for i := 0; i < len(n.order); i++ {
		for j := i + 1; j < len(n.order); j++ {
			if n.order[j] < n.order[i] {
				n.order[i], n.order[j] = n.order[j], n.order[i]
			}
		}
	}
	rng := world.Kernel.RNG().Fork()
	for idx, id := range n.order {
		t := &TIS{
			id:      id,
			net:     n,
			index:   idx,
			store:   make(map[uint32]*Reading),
			pending: make(map[uint64]pendingOp),
		}
		n.tises[id] = t
	}
	for r := uint32(0); r < cfg.Regions; r++ {
		owner := n.order[int(r)%len(n.order)]
		c := int32(0)
		if cfg.InitialCongestion > 0 {
			c = int32(rng.Intn(int(cfg.InitialCongestion) + 1))
		}
		n.tises[owner].store[r] = &Reading{Region: r, Congestion: c}
	}
	for id, t := range n.tises {
		world.ReplaceServer(id, t)
	}
	return n
}

// Owner returns the TIS owning a region.
func (n *Network) Owner(region uint32) ids.Server {
	return n.order[int(region)%len(n.order)]
}

// AnyTIS returns the lowest-numbered TIS (a convenient client target:
// any TIS accepts any operation and routes it).
func (n *Network) AnyTIS() ids.Server { return n.order[0] }

// TISList returns the ring order of servers.
func (n *Network) TISList() []ids.Server {
	return append([]ids.Server(nil), n.order...)
}

// ReadingAt returns the owner's current reading for a region (test and
// experiment hook; bypasses the network).
func (n *Network) ReadingAt(region uint32) (Reading, bool) {
	t := n.tises[n.Owner(region)]
	r, ok := t.store[region]
	if !ok {
		return Reading{}, false
	}
	return *r, true
}

// ringDistance computes hop count and direction (+1/-1) of the shortest
// ring path from index a to index b over n nodes.
func ringDistance(a, b, n int) (hops int, dir int) {
	if a == b {
		return 0, +1
	}
	fwd := (b - a + n) % n
	bwd := (a - b + n) % n
	if fwd <= bwd {
		return fwd, +1
	}
	return bwd, -1
}

// pendingOp tracks a routed operation awaiting its TISReply.
type pendingOp struct {
	proxy ids.ProxyID
	req   ids.RequestID
}

// subscription is a registered threshold watch at the owning TIS.
type subscription struct {
	proxy     ids.ProxyID
	req       ids.RequestID
	region    uint32
	threshold int32
	baseline  int32 // congestion at registration time
}

// TIS is one Traffic Information Server.
type TIS struct {
	id        ids.Server
	net       *Network
	index     int
	store     map[uint32]*Reading
	cache     map[uint32]cachedReading
	subs      []subscription
	pending   map[uint64]pendingOp
	groups    map[uint32]*groupInfo
	mailboxes map[ids.MH]*mailbox
	nextQID   uint64
	rngInit   bool
	rng       *sim.RNG
}

// ID returns the server identifier the TIS answers as.
func (t *TIS) ID() ids.Server { return t.id }

// Subscribers returns the number of live subscriptions (test hook).
func (t *TIS) Subscribers() int { return len(t.subs) }

func (t *TIS) kernel() sim.Scheduler { return t.net.world.Kernel }

func (t *TIS) ensureRNG() *sim.RNG {
	if !t.rngInit {
		t.rng = t.kernel().RNG().Fork()
		t.rngInit = true
	}
	return t.rng
}

// HandleMessage implements netsim.Handler.
func (t *TIS) HandleMessage(from ids.NodeID, m msg.Message) {
	switch v := m.(type) {
	case msg.ServerRequest:
		t.handleClient(v)
	case msg.TISQuery:
		t.handleTISQuery(v)
	case msg.TISReply:
		t.handleTISReply(v)
	case msg.TISDeliver:
		t.handleTISDeliver(v)
	case msg.ServerAck:
		// Application-level ack; nothing to clean up.
	}
}

// handleClient decodes a client operation arriving through a proxy and
// either executes it locally or routes it toward the owner.
func (t *TIS) handleClient(v msg.ServerRequest) {
	// The multicast operations carry their own payload shapes.
	if len(v.Payload) > 0 {
		switch Op(v.Payload[0]) {
		case OpMailbox:
			t.handleMailboxOp(v)
			return
		case OpMulticast:
			t.handleMulticastOp(v)
			return
		}
	}
	op, region, value, err := DecodeOp(v.Payload)
	if err != nil || region >= t.net.cfg.Regions {
		// Malformed or out-of-range: answer with an empty reading so the
		// client is not left hanging.
		t.reply(v.Proxy, v.Req, Reading{Region: region, Congestion: -1})
		return
	}
	switch op {
	case OpQuery:
		t.net.Stats.Queries.Inc()
	case OpUpdate:
		t.net.Stats.Updates.Inc()
	case OpSubscribe:
		t.net.Stats.Subscriptions.Inc()
	}
	owner := t.net.Owner(region)
	if owner == t.id {
		delay := t.net.cfg.LocalProc.Sample(t.ensureRNG())
		t.kernel().Defer(delay, func() { t.execute(op, region, value, v.Proxy, v.Req) })
		return
	}
	if op == OpQuery && t.net.cfg.CacheTTL > 0 {
		if c, ok := t.cache[region]; ok &&
			time.Duration(t.kernel().Now()-c.fetchedAt) <= t.net.cfg.CacheTTL {
			// Serve the (possibly slightly stale) cached reading locally:
			// a lower "degree of accuracy" for a much cheaper answer (§1).
			t.net.Stats.CacheHits.Inc()
			delay := t.net.cfg.LocalProc.Sample(t.ensureRNG())
			r := c.Reading
			t.kernel().Defer(delay, func() { t.reply(v.Proxy, v.Req, r) })
			return
		}
		t.net.Stats.CacheMisses.Inc()
	}
	t.net.Stats.RemoteOps.Inc()
	t.nextQID++
	qid := t.nextQID
	t.pending[qid] = pendingOp{proxy: v.Proxy, req: v.Req}
	q := msg.TISQuery{
		QID: qid, Origin: t.id, Op: tisOp(op), Region: region, Value: value,
		Proxy: v.Proxy, Req: v.Req,
	}
	t.forward(q)
}

func tisOp(op Op) msg.TISOp {
	switch op {
	case OpUpdate:
		return msg.TISOpUpdate
	case OpSubscribe:
		return msg.TISOpSubscribe
	default:
		return msg.TISOpQuery
	}
}

// forward sends a TISQuery one hop along the shortest ring direction.
func (t *TIS) forward(q msg.TISQuery) {
	ownerIdx := int(q.Region) % len(t.net.order)
	_, dir := ringDistance(t.index, ownerIdx, len(t.net.order))
	nextIdx := (t.index + dir + len(t.net.order)) % len(t.net.order)
	next := t.net.order[nextIdx]
	q.Hops++
	t.net.Stats.HopsTotal.Inc()
	delay := t.net.cfg.HopProc.Sample(t.ensureRNG())
	t.kernel().Defer(delay, func() {
		t.net.world.Wired.Send(t.id.Node(), next.Node(), q)
	})
}

// handleTISQuery either executes a routed operation (owner) or forwards
// it another hop.
func (t *TIS) handleTISQuery(q msg.TISQuery) {
	if t.net.Owner(q.Region) != t.id {
		t.forward(q)
		return
	}
	delay := t.net.cfg.LocalProc.Sample(t.ensureRNG())
	t.kernel().Defer(delay, func() {
		switch q.Op {
		case msg.TISOpQuery:
			r := t.readingOf(q.Region)
			t.sendReply(q, r)
		case msg.TISOpUpdate:
			r := t.applyUpdate(q.Region, q.Value)
			t.sendReply(q, r)
		case msg.TISOpSubscribe:
			t.addSubscription(q.Proxy, q.Req, q.Region, q.Value)
			// Subscriptions are answered by their first notification;
			// no synchronous reply.
		case msg.TISOpMailbox:
			t.parkMailbox(q.Proxy, q.Req)
		case msg.TISOpMulticast:
			t.execMulticast(q.Region, q.Data, q.Proxy, q.Req)
		}
	})
}

// sendReply answers a routed query back to its origin TIS.
func (t *TIS) sendReply(q msg.TISQuery, r Reading) {
	t.net.world.Wired.Send(t.id.Node(), q.Origin.Node(), msg.TISReply{
		QID: q.QID, Region: r.Region, Value: r.Congestion, Stamp: r.Stamp, Hops: q.Hops,
	})
}

// handleTISReply completes a routed operation toward the client's proxy
// and refreshes the local cache of the remote reading.
func (t *TIS) handleTISReply(v msg.TISReply) {
	p, ok := t.pending[v.QID]
	if !ok {
		return
	}
	delete(t.pending, v.QID)
	r := Reading{Region: v.Region, Congestion: v.Value, Stamp: v.Stamp}
	if t.net.cfg.CacheTTL > 0 && r.Congestion >= 0 {
		if t.cache == nil {
			t.cache = make(map[uint32]cachedReading)
		}
		t.cache[v.Region] = cachedReading{Reading: r, fetchedAt: t.kernel().Now()}
	}
	t.reply(p.proxy, p.req, r)
}

// cachedReading is one cached remote reading with its fetch time.
type cachedReading struct {
	Reading
	fetchedAt sim.Time
}

// execute runs an operation at the owning TIS on behalf of a proxy.
func (t *TIS) execute(op Op, region uint32, value int32, proxy ids.ProxyID, req ids.RequestID) {
	switch op {
	case OpQuery:
		t.reply(proxy, req, t.readingOf(region))
	case OpUpdate:
		t.reply(proxy, req, t.applyUpdate(region, value))
	case OpSubscribe:
		t.addSubscription(proxy, req, region, value)
	}
}

func (t *TIS) readingOf(region uint32) Reading {
	if r, ok := t.store[region]; ok {
		return *r
	}
	return Reading{Region: region, Congestion: -1}
}

// applyUpdate stores a new congestion value and fires any subscriptions
// whose threshold the change crosses.
func (t *TIS) applyUpdate(region uint32, value int32) Reading {
	r, ok := t.store[region]
	if !ok {
		r = &Reading{Region: region}
		t.store[region] = r
	}
	r.Congestion = value
	r.Stamp = int64(t.kernel().Now())
	fired := t.subs[:0]
	for _, s := range t.subs {
		if s.region == region && abs32(value-s.baseline) >= s.threshold {
			t.net.Stats.Notifications.Inc()
			t.reply(s.proxy, s.req, *r)
			continue // one-shot: consumed by its first notification
		}
		fired = append(fired, s)
	}
	t.subs = fired
	return *r
}

func (t *TIS) addSubscription(proxy ids.ProxyID, req ids.RequestID, region uint32, threshold int32) {
	t.subs = append(t.subs, subscription{
		proxy: proxy, req: req, region: region,
		threshold: threshold, baseline: t.readingOf(region).Congestion,
	})
}

// reply sends a ServerResult to the proxy that issued the request.
func (t *TIS) reply(proxy ids.ProxyID, req ids.RequestID, r Reading) {
	t.net.world.Wired.Send(t.id.Node(), proxy.Host.Node(), msg.ServerResult{
		Proxy: proxy, Req: req, Payload: EncodeReading(r),
	})
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}
