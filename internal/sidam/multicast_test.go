package sidam

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
)

func TestMulticastPayloadCodec(t *testing.T) {
	group, data, err := DecodeMulticast(EncodeMulticast(7, []byte("hello fleet")))
	if err != nil || group != 7 || string(data) != "hello fleet" {
		t.Errorf("round trip = %d %q %v", group, data, err)
	}
	if _, _, err := DecodeMulticast([]byte{1, 2}); err == nil {
		t.Error("short payload accepted")
	}
	if _, _, err := DecodeMulticast(EncodeQuery(1)); err == nil {
		t.Error("query payload accepted as multicast")
	}
	// Empty message body is legal.
	if g, d, err := DecodeMulticast(EncodeMulticast(3, nil)); err != nil || g != 3 || d != nil {
		t.Errorf("empty body round trip = %d %q %v", g, d, err)
	}
}

func TestGroupMsgCodec(t *testing.T) {
	g, seq, data, err := DecodeGroupMsg(EncodeGroupMsg(9, 41, []byte("x")))
	if err != nil || g != 9 || seq != 41 || string(data) != "x" {
		t.Errorf("round trip = %d %d %q %v", g, seq, data, err)
	}
	if _, _, _, err := DecodeGroupMsg(EncodeReading(Reading{})); err == nil {
		t.Error("reading payload accepted as group message")
	}
}

// member drives one group member: it keeps a mailbox request parked and
// records the messages it receives.
type member struct {
	mh       *rdpcore.MHNode
	world    *rdpcore.World
	entry    ids.Server
	received []string
	seqs     []uint64
}

func newMember(w *rdpcore.World, id ids.MH, cell ids.MSS, entry ids.Server) *member {
	m := &member{world: w, entry: entry}
	m.mh = w.AddMH(id, cell)
	m.mh.OnResult(func(_ ids.RequestID, payload []byte, dup bool) {
		if dup {
			return
		}
		if _, seq, data, err := DecodeGroupMsg(payload); err == nil {
			m.received = append(m.received, string(data))
			m.seqs = append(m.seqs, seq)
			m.world.Schedule(0, m.park) // re-park for the next message
		}
	})
	w.Schedule(0, m.park)
	return m
}

func (m *member) park() {
	m.mh.IssueRequest(m.entry, EncodeMailbox())
}

func TestMulticastReachesAllMembersInOrder(t *testing.T) {
	w, n := sidamWorld(3, nil, Config{Regions: 9, InitialCongestion: 0,
		LocalProc: netsim.Constant(10 * time.Millisecond), HopProc: netsim.Constant(5 * time.Millisecond)})
	const group = 5
	members := []*member{
		newMember(w, 1, 1, n.TISList()[0]),
		newMember(w, 2, 2, n.TISList()[1]),
		newMember(w, 3, 3, n.TISList()[2]),
	}
	n.ConfigureGroup(group, []ids.MH{1, 2, 3})

	sender := w.AddMH(9, 4)
	var ackCount int
	sender.OnResult(func(_ ids.RequestID, payload []byte, dup bool) {
		if dup {
			return
		}
		if r, err := ParseAck(payload); err == nil && r.Congestion == 3 {
			ackCount++
		}
	})
	for i := 0; i < 5; i++ {
		text := fmt.Sprintf("msg-%d", i)
		w.Schedule(time.Duration(i)*400*time.Millisecond+100*time.Millisecond, func() {
			sender.IssueRequest(n.TISList()[0], EncodeMulticast(group, []byte(text)))
		})
	}
	// Members roam while messages flow.
	w.Schedule(600*time.Millisecond, func() { w.Migrate(1, 4) })
	w.Schedule(900*time.Millisecond, func() { w.Migrate(2, 1) })
	w.RunUntil(10 * time.Second)

	for i, m := range members {
		if len(m.received) != 5 {
			t.Fatalf("member %d received %d messages, want 5: %v", i+1, len(m.received), m.received)
		}
		for j, text := range m.received {
			if want := fmt.Sprintf("msg-%d", j); text != want {
				t.Errorf("member %d message %d = %q, want %q (total order broken)", i+1, j, text, want)
			}
			if m.seqs[j] != uint64(j+1) {
				t.Errorf("member %d seq %d = %d, want %d", i+1, j, m.seqs[j], j+1)
			}
		}
	}
	if got := n.Stats.Multicasts.Value(); got != 5 {
		t.Errorf("Multicasts = %d, want 5", got)
	}
	if got := n.Stats.GroupDeliveries.Value(); got != 15 {
		t.Errorf("GroupDeliveries = %d, want 15", got)
	}
	if ackCount != 5 {
		t.Errorf("sender acks = %d, want 5", ackCount)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// ParseAck is a test alias: multicast acks are encoded as Readings.
func ParseAck(b []byte) (Reading, error) { return DecodeReading(b) }

func TestMulticastQueuesForSlowMember(t *testing.T) {
	// Messages sent while the member has no mailbox parked (it is slow to
	// re-park, or inactive) must queue at the mailbox TIS and drain on
	// the next parks.
	w, n := sidamWorld(2, nil, Config{Regions: 4, InitialCongestion: 0})
	const group = 2
	n.ConfigureGroup(group, []ids.MH{1})
	mh := w.AddMH(1, 1)
	var got []string
	mh.OnResult(func(_ ids.RequestID, payload []byte, dup bool) {
		if dup {
			return
		}
		if _, _, data, err := DecodeGroupMsg(payload); err == nil {
			got = append(got, string(data))
		}
	})
	sender := w.AddMH(9, 2)
	// Three messages are sent before the member ever parks a mailbox.
	for i := 0; i < 3; i++ {
		text := fmt.Sprintf("early-%d", i)
		w.Schedule(time.Duration(i)*100*time.Millisecond, func() {
			sender.IssueRequest(n.AnyTIS(), EncodeMulticast(group, []byte(text)))
		})
	}
	w.RunUntil(2 * time.Second)
	if depth := n.MailboxDepth(1); depth != 3 {
		t.Fatalf("MailboxDepth = %d, want 3 queued messages", depth)
	}
	// Parks drain the queue one message per request, in order.
	for i := 0; i < 3; i++ {
		w.Schedule(time.Duration(i)*300*time.Millisecond, func() {
			mh.IssueRequest(n.AnyTIS(), EncodeMailbox())
		})
	}
	w.RunUntil(6 * time.Second)
	if len(got) != 3 {
		t.Fatalf("received %d, want 3: %v", len(got), got)
	}
	for i, text := range got {
		if want := fmt.Sprintf("early-%d", i); text != want {
			t.Errorf("message %d = %q, want %q", i, text, want)
		}
	}
	if depth := n.MailboxDepth(1); depth != 0 {
		t.Errorf("MailboxDepth after drain = %d, want 0", depth)
	}
}

func TestMulticastToUnknownGroupAnswersSender(t *testing.T) {
	w, n := sidamWorld(2, nil, Config{Regions: 4, InitialCongestion: 0})
	sender := w.AddMH(9, 1)
	var got Reading
	sender.OnResult(func(_ ids.RequestID, payload []byte, dup bool) {
		if !dup {
			got, _ = DecodeReading(payload)
		}
	})
	w.Schedule(0, func() { sender.IssueRequest(n.AnyTIS(), EncodeMulticast(99, []byte("x"))) })
	w.RunUntil(2 * time.Second)
	if got.Congestion != -1 {
		t.Errorf("unknown-group ack = %+v, want congestion -1", got)
	}
	if got := w.TotalProxies(); got != 0 {
		t.Errorf("TotalProxies = %d, want 0", got)
	}
}

func TestMulticastDeliveredToInactiveMemberOnWake(t *testing.T) {
	// The member parks a mailbox, goes inactive, a message is sent (the
	// mailbox answers the parked request but the wireless delivery is
	// lost), and on reactivation RDP retransmits — the member still gets
	// the message.
	w, n := sidamWorld(2, nil, Config{Regions: 4, InitialCongestion: 0})
	const group = 2
	n.ConfigureGroup(group, []ids.MH{1})
	m := newMember(w, 1, 1, n.AnyTIS())
	sender := w.AddMH(9, 2)
	w.Schedule(300*time.Millisecond, func() { w.SetActive(1, false) })
	w.Schedule(500*time.Millisecond, func() {
		sender.IssueRequest(n.AnyTIS(), EncodeMulticast(group, []byte("wake up")))
	})
	w.Schedule(2*time.Second, func() { w.SetActive(1, true) })
	w.RunUntil(6 * time.Second)
	if len(m.received) != 1 || m.received[0] != "wake up" {
		t.Fatalf("received = %v, want [wake up]", m.received)
	}
	if w.Stats.Retransmissions.Value() == 0 {
		t.Error("expected a proxy retransmission for the sleeping member")
	}
}

func TestDuplicateParkAnswersOldRequest(t *testing.T) {
	w, n := sidamWorld(2, nil, Config{Regions: 4, InitialCongestion: 0})
	n.ConfigureGroup(2, []ids.MH{1})
	mh := w.AddMH(1, 1)
	answered := 0
	mh.OnResult(func(_ ids.RequestID, _ []byte, dup bool) {
		if !dup {
			answered++
		}
	})
	w.Schedule(0, func() { mh.IssueRequest(n.AnyTIS(), EncodeMailbox()) })
	w.Schedule(500*time.Millisecond, func() { mh.IssueRequest(n.AnyTIS(), EncodeMailbox()) })
	w.RunUntil(3 * time.Second)
	// The first park must have been failed out (answered) when the second
	// replaced it; the second stays parked.
	if answered != 1 {
		t.Errorf("answered = %d, want 1 (the displaced park)", answered)
	}
}

// FuzzDecodeOp hammers the client payload decoders with arbitrary bytes.
func FuzzDecodeOp(f *testing.F) {
	f.Add(EncodeQuery(3))
	f.Add(EncodeUpdate(4, 80))
	f.Add(EncodeSubscribe(5, 20))
	f.Add(EncodeMailbox())
	f.Add(EncodeMulticast(7, []byte("m")))
	f.Add(EncodeReading(Reading{Region: 1, Congestion: 50}))
	f.Fuzz(func(t *testing.T, b []byte) {
		// None of these may panic.
		_, _, _, _ = DecodeOp(b)
		_, _ = DecodeReading(b)
		_, _, _ = DecodeMulticast(b)
		_, _, _, _ = DecodeGroupMsg(b)
	})
}
