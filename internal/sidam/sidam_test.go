package sidam

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
)

// sidamWorld builds an RDP world with a TIS network installed.
func sidamWorld(tises int, mutate func(*rdpcore.Config), scfg Config) (*rdpcore.World, *Network) {
	cfg := rdpcore.DefaultConfig()
	cfg.NumMSS = 4
	cfg.NumServers = tises
	cfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
	if mutate != nil {
		mutate(&cfg)
	}
	w := rdpcore.NewWorld(cfg)
	n := Install(w, scfg)
	return w, n
}

func TestPayloadCodecRoundTrip(t *testing.T) {
	f := func(opSel uint8, region uint32, value int32) bool {
		var payload []byte
		var wantOp Op
		switch opSel % 3 {
		case 0:
			payload, wantOp = EncodeQuery(region), OpQuery
			value = 0
		case 1:
			payload, wantOp = EncodeUpdate(region, value), OpUpdate
		default:
			payload, wantOp = EncodeSubscribe(region, value), OpSubscribe
		}
		op, r, v, err := DecodeOp(payload)
		return err == nil && op == wantOp && r == region && v == value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadingCodecRoundTrip(t *testing.T) {
	f := func(region uint32, congestion int32, stamp int64) bool {
		r := Reading{Region: region, Congestion: congestion, Stamp: stamp}
		got, err := DecodeReading(EncodeReading(r))
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeOpRejectsGarbage(t *testing.T) {
	if _, _, _, err := DecodeOp([]byte{1, 2, 3}); err == nil {
		t.Error("short payload accepted")
	}
	if _, _, _, err := DecodeOp(make([]byte, 9)); err == nil {
		t.Error("zero op accepted")
	}
	if _, err := DecodeReading([]byte{1}); err == nil {
		t.Error("short reading accepted")
	}
}

func TestRingDistance(t *testing.T) {
	tests := []struct {
		a, b, n  int
		wantHops int
		wantDir  int
	}{
		{0, 0, 5, 0, +1},
		{0, 1, 5, 1, +1},
		{0, 4, 5, 1, -1},
		{1, 4, 6, 3, +1},
		{4, 1, 6, 3, +1}, // tie: forward direction wins
		{0, 3, 6, 3, +1},
	}
	for _, tt := range tests {
		hops, dir := ringDistance(tt.a, tt.b, tt.n)
		if hops != tt.wantHops || dir != tt.wantDir {
			t.Errorf("ringDistance(%d,%d,%d) = (%d,%d), want (%d,%d)",
				tt.a, tt.b, tt.n, hops, dir, tt.wantHops, tt.wantDir)
		}
	}
}

func TestLocalQuery(t *testing.T) {
	w, n := sidamWorld(3, nil, Config{
		Regions: 9, LocalProc: netsim.Constant(20 * time.Millisecond), InitialCongestion: 0,
	})
	mh := w.AddMH(1, 1)
	var got Reading
	mh.OnResult(func(_ ids.RequestID, payload []byte, dup bool) {
		if !dup {
			got, _ = DecodeReading(payload)
		}
	})
	// Region 0 is owned by the lowest TIS; query it directly.
	target := n.Owner(0)
	w.Kernel.After(0, func() { mh.IssueRequest(target, EncodeQuery(0)) })
	w.RunUntil(time.Second)
	if got.Region != 0 || got.Congestion != 0 {
		t.Errorf("reading = %+v, want region 0 congestion 0", got)
	}
	if n.Stats.RemoteOps.Value() != 0 {
		t.Errorf("RemoteOps = %d, want 0 for owner-local query", n.Stats.RemoteOps.Value())
	}
}

func TestRemoteQueryRoutesThroughRing(t *testing.T) {
	w, n := sidamWorld(5, nil, Config{
		Regions: 25, LocalProc: netsim.Constant(10 * time.Millisecond),
		HopProc: netsim.Constant(5 * time.Millisecond), InitialCongestion: 50,
	})
	mh := w.AddMH(1, 1)
	delivered := 0
	mh.OnResult(func(_ ids.RequestID, payload []byte, dup bool) {
		if dup {
			return
		}
		delivered++
		r, err := DecodeReading(payload)
		if err != nil || r.Congestion < 0 {
			t.Errorf("bad reading: %+v err=%v", r, err)
		}
	})
	// Send the query for region 2 to a TIS that does not own it; ring
	// distance from TIS index 0 to index 2 is 2 hops.
	entry := n.TISList()[0]
	if n.Owner(2) == entry {
		t.Fatal("test setup: region 2 must not be owned by the entry TIS")
	}
	w.Kernel.After(0, func() { mh.IssueRequest(entry, EncodeQuery(2)) })
	w.RunUntil(2 * time.Second)
	if delivered != 1 {
		t.Fatalf("delivered %d results, want 1", delivered)
	}
	if n.Stats.RemoteOps.Value() != 1 {
		t.Errorf("RemoteOps = %d, want 1", n.Stats.RemoteOps.Value())
	}
	if n.Stats.HopsTotal.Value() != 2 {
		t.Errorf("HopsTotal = %d, want 2", n.Stats.HopsTotal.Value())
	}
}

func TestUpdateVisibleToLaterQuery(t *testing.T) {
	w, n := sidamWorld(3, nil, Config{
		Regions: 9, LocalProc: netsim.Constant(5 * time.Millisecond), InitialCongestion: 0,
	})
	mh := w.AddMH(1, 1)
	var last Reading
	mh.OnResult(func(_ ids.RequestID, payload []byte, dup bool) {
		if !dup {
			last, _ = DecodeReading(payload)
		}
	})
	entry := n.AnyTIS()
	w.Kernel.After(0, func() { mh.IssueRequest(entry, EncodeUpdate(4, 87)) })
	w.Kernel.After(500*time.Millisecond, func() { mh.IssueRequest(entry, EncodeQuery(4)) })
	w.RunUntil(2 * time.Second)
	if last.Region != 4 || last.Congestion != 87 {
		t.Errorf("query after update = %+v, want region 4 congestion 87", last)
	}
	if got, ok := n.ReadingAt(4); !ok || got.Congestion != 87 {
		t.Errorf("owner store = %+v,%t", got, ok)
	}
}

func TestSubscriptionFiresOnThresholdCrossing(t *testing.T) {
	w, n := sidamWorld(3, nil, Config{
		Regions: 9, LocalProc: netsim.Constant(5 * time.Millisecond), InitialCongestion: 0,
	})
	sub := w.AddMH(1, 1)   // subscriber
	staff := w.AddMH(2, 2) // traffic staff feeding updates
	var notified []Reading
	sub.OnResult(func(_ ids.RequestID, payload []byte, dup bool) {
		if !dup {
			r, _ := DecodeReading(payload)
			notified = append(notified, r)
		}
	})
	entry := n.AnyTIS()
	w.Kernel.After(0, func() { sub.IssueRequest(entry, EncodeSubscribe(3, 30)) })
	// A small change must NOT notify; a large one must.
	w.Kernel.After(300*time.Millisecond, func() { staff.IssueRequest(entry, EncodeUpdate(3, 10)) })
	w.Kernel.After(600*time.Millisecond, func() { staff.IssueRequest(entry, EncodeUpdate(3, 55)) })
	w.RunUntil(3 * time.Second)

	if len(notified) != 1 {
		t.Fatalf("notifications = %d, want 1 (only the 55-point change crosses the 30 threshold)", len(notified))
	}
	if notified[0].Region != 3 || notified[0].Congestion != 55 {
		t.Errorf("notification = %+v, want region 3 congestion 55", notified[0])
	}
	if got := n.Stats.Notifications.Value(); got != 1 {
		t.Errorf("Stats.Notifications = %d, want 1", got)
	}
}

func TestSubscriptionNotifiesMigratedSubscriber(t *testing.T) {
	// The paper's subscribe use case: the notification is asynchronous
	// and the subscriber has moved cells since subscribing — RDP still
	// delivers it.
	w, n := sidamWorld(3, nil, Config{
		Regions: 9, LocalProc: netsim.Constant(5 * time.Millisecond), InitialCongestion: 0,
	})
	sub := w.AddMH(1, 1)
	staff := w.AddMH(2, 2)
	notified := 0
	sub.OnResult(func(_ ids.RequestID, payload []byte, dup bool) {
		if !dup {
			notified++
		}
	})
	entry := n.AnyTIS()
	w.Kernel.After(0, func() { sub.IssueRequest(entry, EncodeSubscribe(5, 20)) })
	w.Kernel.After(200*time.Millisecond, func() { w.Migrate(1, 3) })
	w.Kernel.After(400*time.Millisecond, func() { w.Migrate(1, 4) })
	w.Kernel.After(600*time.Millisecond, func() { staff.IssueRequest(entry, EncodeUpdate(5, 90)) })
	w.RunUntil(3 * time.Second)
	if notified != 1 {
		t.Fatalf("notified = %d, want 1 despite two migrations", notified)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSubscriptionIsOneShot(t *testing.T) {
	w, n := sidamWorld(2, nil, Config{
		Regions: 4, LocalProc: netsim.Constant(5 * time.Millisecond), InitialCongestion: 0,
	})
	sub := w.AddMH(1, 1)
	staff := w.AddMH(2, 2)
	notified := 0
	sub.OnResult(func(_ ids.RequestID, _ []byte, dup bool) {
		if !dup {
			notified++
		}
	})
	entry := n.AnyTIS()
	w.Kernel.After(0, func() { sub.IssueRequest(entry, EncodeSubscribe(0, 10)) })
	w.Kernel.After(300*time.Millisecond, func() { staff.IssueRequest(entry, EncodeUpdate(0, 50)) })
	w.Kernel.After(600*time.Millisecond, func() { staff.IssueRequest(entry, EncodeUpdate(0, 99)) })
	w.RunUntil(3 * time.Second)
	if notified != 1 {
		t.Errorf("notified = %d, want 1 (subscription consumed by first match)", notified)
	}
}

func TestMalformedPayloadStillAnswered(t *testing.T) {
	// A garbage request must not leave the client's proxy pending
	// forever.
	w, n := sidamWorld(2, nil, DefaultConfig())
	mh := w.AddMH(1, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = mh.IssueRequest(n.AnyTIS(), []byte("garbage")) })
	w.RunUntil(2 * time.Second)
	if !mh.Seen(req) {
		t.Error("malformed request left unanswered")
	}
	if got := w.TotalProxies(); got != 0 {
		t.Errorf("TotalProxies = %d, want 0", got)
	}
}

func TestOutOfRangeRegionAnswered(t *testing.T) {
	w, n := sidamWorld(2, nil, Config{Regions: 4, InitialCongestion: 0})
	mh := w.AddMH(1, 1)
	var got Reading
	mh.OnResult(func(_ ids.RequestID, payload []byte, dup bool) {
		if !dup {
			got, _ = DecodeReading(payload)
		}
	})
	w.Kernel.After(0, func() { mh.IssueRequest(n.AnyTIS(), EncodeQuery(99)) })
	w.RunUntil(time.Second)
	if got.Congestion != -1 {
		t.Errorf("out-of-range query answered %+v, want congestion -1", got)
	}
}

func TestRegionOwnershipPartition(t *testing.T) {
	_, n := sidamWorld(4, nil, Config{Regions: 16, InitialCongestion: 0})
	counts := make(map[ids.Server]int)
	for r := uint32(0); r < 16; r++ {
		counts[n.Owner(r)]++
	}
	if len(counts) != 4 {
		t.Fatalf("regions spread over %d TISes, want 4", len(counts))
	}
	for tis, c := range counts {
		if c != 4 {
			t.Errorf("TIS %v owns %d regions, want 4", tis, c)
		}
	}
}

func TestQueryCacheServesFreshAndExpires(t *testing.T) {
	w, n := sidamWorld(4, nil, Config{
		Regions:   16,
		LocalProc: netsim.Constant(5 * time.Millisecond),
		HopProc:   netsim.Constant(5 * time.Millisecond),
		CacheTTL:  2 * time.Second,
	})
	mh := w.AddMH(1, 1)
	var readings []Reading
	mh.OnResult(func(_ ids.RequestID, payload []byte, dup bool) {
		if !dup {
			if r, err := DecodeReading(payload); err == nil {
				readings = append(readings, r)
			}
		}
	})
	staff := w.AddMH(2, 2)
	entry := n.TISList()[0]
	region := uint32(1) // owned by the second TIS: remote from entry
	if n.Owner(region) == entry {
		t.Fatal("setup: region must be remote from the entry TIS")
	}
	// Staff updates go straight to the owner so they do not refresh the
	// entry TIS's cache (a routed reply legitimately would).
	ownerTIS := n.Owner(region)

	w.Schedule(0, func() { staff.IssueRequest(ownerTIS, EncodeUpdate(region, 40)) })
	// First query populates the cache; second (within TTL) hits it even
	// though the owner's value changed in between — the accuracy trade.
	w.Schedule(500*time.Millisecond, func() { mh.IssueRequest(entry, EncodeQuery(region)) })
	w.Schedule(time.Second, func() { staff.IssueRequest(ownerTIS, EncodeUpdate(region, 90)) })
	w.Schedule(1500*time.Millisecond, func() { mh.IssueRequest(entry, EncodeQuery(region)) })
	// Third query after the TTL expired routes to the owner again.
	w.Schedule(4*time.Second, func() { mh.IssueRequest(entry, EncodeQuery(region)) })
	w.RunUntil(8 * time.Second)

	if len(readings) != 3 {
		t.Fatalf("readings = %d, want 3 (%v)", len(readings), readings)
	}
	if readings[0].Congestion != 40 {
		t.Errorf("first query = %d, want 40", readings[0].Congestion)
	}
	if readings[1].Congestion != 40 {
		t.Errorf("cached query = %d, want stale 40", readings[1].Congestion)
	}
	if readings[2].Congestion != 90 {
		t.Errorf("post-TTL query = %d, want fresh 90", readings[2].Congestion)
	}
	if got := n.Stats.CacheHits.Value(); got != 1 {
		t.Errorf("CacheHits = %d, want 1", got)
	}
	if got := n.Stats.CacheMisses.Value(); got != 2 {
		t.Errorf("CacheMisses = %d, want 2", got)
	}
	// Only the two cache misses routed through the ring.
	if got := n.Stats.RemoteOps.Value(); got != 2 {
		t.Errorf("RemoteOps = %d, want 2 (the query misses; updates went to the owner)", got)
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	w, n := sidamWorld(4, nil, Config{Regions: 16, LocalProc: netsim.Constant(5 * time.Millisecond)})
	mh := w.AddMH(1, 1)
	entry := n.TISList()[0]
	region := uint32(1)
	w.Schedule(0, func() { mh.IssueRequest(entry, EncodeQuery(region)) })
	w.Schedule(time.Second, func() { mh.IssueRequest(entry, EncodeQuery(region)) })
	w.RunUntil(4 * time.Second)
	if got := n.Stats.CacheHits.Value(); got != 0 {
		t.Errorf("CacheHits = %d, want 0 with caching off", got)
	}
	if got := n.Stats.RemoteOps.Value(); got != 2 {
		t.Errorf("RemoteOps = %d, want 2", got)
	}
}
