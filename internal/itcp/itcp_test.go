package itcp

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/netsim"
)

func build(mutate func(*Config)) *World {
	cfg := DefaultConfig()
	cfg.NumMSS = 4
	cfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
	cfg.ServerProc = netsim.Constant(50 * time.Millisecond)
	if mutate != nil {
		mutate(&cfg)
	}
	return NewWorld(cfg)
}

func TestStationaryDelivery(t *testing.T) {
	w := build(nil)
	m := w.AddMH(1, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = m.IssueRequest(1, []byte("q")) })
	w.RunUntil(time.Second)
	if !m.Seen(req) {
		t.Fatal("result not delivered")
	}
	// Ack clears the buffered result.
	if pending, buffered := w.StationImage(1, 1); pending != 0 || buffered != 0 {
		t.Errorf("image = (%d pending, %d buffered), want empty", pending, buffered)
	}
}

func TestImageMovesOnHandoff(t *testing.T) {
	w := build(func(c *Config) { c.ServerProc = netsim.Constant(500 * time.Millisecond) })
	m := w.AddMH(1, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = m.IssueRequest(1, []byte("q")) })
	w.Kernel.After(100*time.Millisecond, func() { w.Migrate(1, 2) })
	w.RunUntil(2 * time.Second)
	if !m.Seen(req) {
		t.Fatal("result lost across image hand-off")
	}
	if got := w.Stats.Handoffs.Value(); got != 1 {
		t.Errorf("Handoffs = %d, want 1", got)
	}
	if got := w.Stats.ChasedResults.Value(); got != 1 {
		t.Errorf("ChasedResults = %d, want 1 (reply addressed to the old endpoint)", got)
	}
	if got := w.Stats.HandoffStateBytes.Value(); got == 0 {
		t.Error("no hand-off state recorded")
	}
}

func TestHandoffStateGrowsWithBufferedResults(t *testing.T) {
	// The E6 core fact, inverted for this baseline: the image grows with
	// the number of pending/buffered items.
	bytesFor := func(pending int) int64 {
		w := build(func(c *Config) { c.ServerProc = netsim.Constant(5 * time.Second) })
		m := w.AddMH(1, 1)
		w.Kernel.After(0, func() {
			for i := 0; i < pending; i++ {
				m.IssueRequest(1, make([]byte, 100))
			}
		})
		w.Kernel.After(200*time.Millisecond, func() { w.Migrate(1, 2) })
		w.RunUntil(time.Second)
		return w.Stats.HandoffStateBytes.Value()
	}
	small, large := bytesFor(1), bytesFor(50)
	if small == 0 {
		t.Fatal("no hand-off state recorded")
	}
	if large < small*10 {
		t.Errorf("image transfer should scale with load: %d vs %d bytes", small, large)
	}
}

func TestBufferedResultTransfersAndRedelivers(t *testing.T) {
	// A result delivered but not acked (MH went inactive) must survive
	// the image transfer and be retransmitted by the new station.
	w := build(nil)
	m := w.AddMH(1, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = m.IssueRequest(1, []byte("q")) })
	// Result reaches mss1 at ~70ms and the downlink at ~80ms; sleep at
	// 75ms so the delivery drops and the result stays buffered.
	w.Kernel.After(75*time.Millisecond, func() { w.SetActive(1, false) })
	w.Kernel.After(200*time.Millisecond, func() { w.Migrate(1, 3) }) // carried asleep
	w.Kernel.After(400*time.Millisecond, func() { w.SetActive(1, true) })
	w.RunUntil(3 * time.Second)
	if !m.Seen(req) {
		t.Fatal("buffered result not redelivered after wake-up hand-off")
	}
	if got := w.Stats.Handoffs.Value(); got != 1 {
		t.Errorf("Handoffs = %d, want 1", got)
	}
}

func TestReactivationRetransmitsInPlace(t *testing.T) {
	w := build(nil)
	m := w.AddMH(1, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = m.IssueRequest(1, []byte("q")) })
	w.Kernel.After(75*time.Millisecond, func() { w.SetActive(1, false) })
	w.Kernel.After(300*time.Millisecond, func() { w.SetActive(1, true) })
	w.RunUntil(2 * time.Second)
	if !m.Seen(req) {
		t.Fatal("buffered result not retransmitted on reactivation")
	}
	if got := w.Stats.Handoffs.Value(); got != 0 {
		t.Errorf("Handoffs = %d, want 0 for in-place reactivation", got)
	}
}

func TestDeliveryAcrossManyMigrations(t *testing.T) {
	w := build(func(c *Config) { c.ServerProc = netsim.Constant(400 * time.Millisecond) })
	m := w.AddMH(1, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = m.IssueRequest(1, []byte("x")) })
	for i := 1; i <= 10; i++ {
		cell := ids.MSS(i%4 + 1)
		w.Kernel.After(time.Duration(i)*70*time.Millisecond, func() { w.Migrate(1, cell) })
	}
	w.RunUntil(5 * time.Second)
	if !m.Seen(req) {
		t.Fatal("result lost under migration churn")
	}
	if got := w.Stats.Handoffs.Value(); got != 10 {
		t.Errorf("Handoffs = %d, want 10", got)
	}
}

func TestValidation(t *testing.T) {
	w := build(nil)
	w.AddMH(1, 1)
	for name, fn := range map[string]func(){
		"duplicate": func() { w.AddMH(1, 1) },
		"bad cell":  func() { w.AddMH(2, 99) },
		"unknown":   func() { w.Migrate(9, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestStationListAndMobileID(t *testing.T) {
	w := build(nil)
	if got := len(w.StationList()); got != 4 {
		t.Errorf("StationList = %d stations, want 4", got)
	}
	m := w.AddMH(3, 1)
	if m.ID() != 3 {
		t.Errorf("Mobile.ID = %v, want mh3", m.ID())
	}
}

func TestLateRequestFollowsImageChain(t *testing.T) {
	// A request reaching a station after its image moved on is forwarded
	// along the hand-off chain, and duplicate request ids are absorbed.
	w := build(func(c *Config) { c.ServerProc = netsim.Constant(300 * time.Millisecond) })
	m := w.AddMH(1, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = m.IssueRequest(1, []byte("q")) })
	w.Kernel.After(50*time.Millisecond, func() { w.Migrate(1, 2) })
	w.RunUntil(100 * time.Millisecond)
	// The stale station receives the same request again (a late frame).
	w.stationFor(1).HandleMessage(ids.MH(1).Node(), msg.Request{Req: req, Server: 1, Payload: []byte("q")})
	w.RunUntil(3 * time.Second)
	if !m.Seen(req) {
		t.Fatal("request lost")
	}
	if got := w.Stats.ResultsDelivered.Value(); got != 1 {
		t.Errorf("delivered %d, want 1 (duplicate absorbed)", got)
	}
}
