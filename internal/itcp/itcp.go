// Package itcp implements an indirect-protocol baseline in the style of
// Bakre's I-TCP (paper §4): the respMss is the mobile host's fixed-side
// endpoint and holds the MH's full session image — its pending requests
// and every buffered, not-yet-acknowledged result. On each hand-off the
// whole image is shipped to the new station, and in-flight server
// replies are chased with a forwarding pointer.
//
// Functionally the baseline delivers results reliably, like RDP; the
// point of comparison (experiment E6) is the cost of mobility: its
// hand-off state transfer is O(pending + buffered results), against
// RDP's O(1) pref, because RDP parks that state at the proxy instead
// ("our protocol aims at minimizing the transfer of a MH's state
// between the old and new MSS during Hand-off, because most of the data
// related to the request is kept at the proxy", §5).
package itcp

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/wtp"
)

// Config parameterizes an I-TCP world.
type Config struct {
	Seed            int64
	NumMSS          int
	NumServers      int
	WiredLatency    netsim.LatencyModel
	WirelessLatency netsim.LatencyModel
	WirelessLoss    float64
	ServerProc      netsim.LatencyModel
	Observer        netsim.Observer
	// WirelessWTP, when enabled, carries the downlink over the windowed
	// wireless transport — I-TCP's wireless TCP hop, which E15 compares
	// against the RDP-side windowed link on equal terms.
	WirelessWTP wtp.Config
}

// DefaultConfig mirrors rdpcore.DefaultConfig's network parameters.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		NumMSS:          3,
		NumServers:      1,
		WiredLatency:    netsim.Constant(5 * time.Millisecond),
		WirelessLatency: netsim.Constant(20 * time.Millisecond),
		ServerProc:      netsim.Constant(150 * time.Millisecond),
	}
}

// Stats aggregates the baseline's measurements.
type Stats struct {
	RequestsIssued    metrics.Counter
	ResultsDelivered  metrics.Counter
	Duplicates        metrics.Counter
	Handoffs          metrics.Counter
	HandoffStateBytes metrics.Counter
	ChasedResults     metrics.Counter // server replies forwarded after the image moved
	WirelessDrops     metrics.Counter
	ResultLatency     metrics.Histogram
	HandoffLatency    metrics.Histogram
}

// sessionImage is the per-MH state an I-TCP-style station maintains: the
// open requests and every result delivered-but-unacked or not yet
// deliverable.
type sessionImage struct {
	pending map[ids.RequestID]bool   // issued, no result yet
	results map[ids.RequestID][]byte // buffered until acked
	order   []ids.RequestID
}

func newImage() *sessionImage {
	return &sessionImage{
		pending: make(map[ids.RequestID]bool),
		results: make(map[ids.RequestID][]byte),
	}
}

// World is the I-TCP-style simulation world.
type World struct {
	cfg   Config
	Stats *Stats

	Kernel   *sim.Kernel
	Wired    *netsim.Wired
	Wireless *netsim.Wireless

	stations map[ids.MSS]*station
	servers  map[ids.Server]*server.AppServer
	mhs      map[ids.MH]*Mobile

	mssList []ids.MSS
	loc     map[ids.MH]ids.MSS
	active  map[ids.MH]bool
}

// NewWorld builds an I-TCP world.
func NewWorld(cfg Config) *World {
	if cfg.NumMSS < 1 {
		panic("itcp: Config.NumMSS must be >= 1")
	}
	w := &World{
		cfg:      cfg,
		Stats:    &Stats{},
		Kernel:   sim.NewKernel(cfg.Seed),
		stations: make(map[ids.MSS]*station),
		servers:  make(map[ids.Server]*server.AppServer),
		mhs:      make(map[ids.MH]*Mobile),
		loc:      make(map[ids.MH]ids.MSS),
		active:   make(map[ids.MH]bool),
	}
	members := make([]ids.NodeID, 0, cfg.NumMSS+cfg.NumServers)
	for i := 1; i <= cfg.NumMSS; i++ {
		w.mssList = append(w.mssList, ids.MSS(i))
		members = append(members, ids.MSS(i).Node())
	}
	for i := 1; i <= cfg.NumServers; i++ {
		members = append(members, ids.Server(i).Node())
	}
	obs := func(at sim.Time, layer netsim.Layer, kind netsim.EventKind, from, to ids.NodeID, m msg.Message) {
		if layer == netsim.LayerWireless && kind.IsDrop() {
			w.Stats.WirelessDrops.Inc()
		}
		if layer == netsim.LayerWired && kind == netsim.EventSent && m.Kind() == msg.KindImageTransfer {
			w.Stats.HandoffStateBytes.Add(int64(msg.WireSize(m)))
		}
		if cfg.Observer != nil {
			cfg.Observer(at, layer, kind, from, to, m)
		}
	}
	w.Wired = netsim.NewWired(w.Kernel, members, netsim.WiredConfig{Latency: cfg.WiredLatency, Causal: true}, obs)
	w.Wireless = netsim.NewWireless(w.Kernel, netsim.WirelessConfig{
		Latency:   cfg.WirelessLatency,
		LossProb:  cfg.WirelessLoss,
		Reachable: func(mss ids.MSS, mh ids.MH) bool { return w.loc[mh] == mss && w.active[mh] },
		WTP:       cfg.WirelessWTP,
	}, obs)

	for _, id := range w.mssList {
		st := &station{
			id:        id,
			w:         w,
			images:    make(map[ids.MH]*sessionImage),
			arriving:  make(map[ids.MH]*handoffWait),
			forwardTo: make(map[ids.MH]ids.MSS),
		}
		w.stations[id] = st
		w.Wired.Register(id.Node(), st)
		w.Wireless.RegisterMSS(id, st)
	}
	for i := 1; i <= cfg.NumServers; i++ {
		id := ids.Server(i)
		s := server.New(id, w.Kernel, w.Wired, cfg.ServerProc, nil)
		w.servers[id] = s
		w.Wired.Register(id.Node(), s)
	}
	return w
}

// StationList returns station identifiers in ascending order.
func (w *World) StationList() []ids.MSS {
	return append([]ids.MSS(nil), w.mssList...)
}

// AddMH creates a mobile in the given cell.
func (w *World) AddMH(id ids.MH, cell ids.MSS) *Mobile {
	if _, dup := w.mhs[id]; dup {
		panic(fmt.Sprintf("itcp: duplicate MH %v", id))
	}
	st, ok := w.stations[cell]
	if !ok {
		panic(fmt.Sprintf("itcp: unknown cell %v", cell))
	}
	m := &Mobile{id: id, w: w, cell: cell, seen: make(map[ids.RequestID]bool), issuedAt: make(map[ids.RequestID]sim.Time)}
	w.mhs[id] = m
	w.loc[id] = cell
	w.active[id] = true
	w.Wireless.RegisterMH(id, m)
	st.images[id] = newImage()
	return m
}

// Migrate moves the mobile to a new cell; an active mobile greets it,
// triggering the image hand-off.
func (w *World) Migrate(id ids.MH, cell ids.MSS) {
	m, ok := w.mhs[id]
	if !ok {
		panic(fmt.Sprintf("itcp: unknown MH %v", id))
	}
	if w.loc[id] == cell {
		return
	}
	w.loc[id] = cell
	if w.active[id] {
		old := m.cell
		m.cell = cell
		w.Wireless.SendUplink(id, cell, msg.Greet{MH: id, OldMSS: old})
	}
}

// SetActive toggles activity; activation greets the current cell so the
// station can retransmit buffered results.
func (w *World) SetActive(id ids.MH, activeNow bool) {
	m, ok := w.mhs[id]
	if !ok {
		panic(fmt.Sprintf("itcp: unknown MH %v", id))
	}
	if w.active[id] == activeNow {
		return
	}
	w.active[id] = activeNow
	if activeNow {
		old := m.cell
		m.cell = w.loc[id]
		w.Wireless.SendUplink(id, m.cell, msg.Greet{MH: id, OldMSS: old})
	}
}

// RunUntil advances the simulation.
func (w *World) RunUntil(t time.Duration) { w.Kernel.RunUntil(sim.Time(t)) }

// handoffWait tracks an in-progress image hand-off at the new station.
type handoffWait struct {
	greetAt  sim.Time
	buffered []msg.Message
}

// station is an I-TCP-style support station holding full session images.
type station struct {
	id        ids.MSS
	w         *World
	images    map[ids.MH]*sessionImage
	arriving  map[ids.MH]*handoffWait
	forwardTo map[ids.MH]ids.MSS
}

// HandleMessage implements netsim.Handler.
func (s *station) HandleMessage(from ids.NodeID, m msg.Message) {
	switch v := m.(type) {
	case msg.Greet:
		s.handleGreet(v)
	case msg.Request:
		s.handleRequest(v)
	case msg.AckMH:
		s.handleAck(v)
	case msg.Dereg:
		s.handleDereg(v)
	case msg.ImageTransfer:
		s.handleImage(v)
	case msg.ServerResult:
		s.handleServerResult(v)
	}
}

func (s *station) handleGreet(m msg.Greet) {
	if m.OldMSS == s.id {
		// Reactivation in place: retransmit buffered results.
		if img, ok := s.images[m.MH]; ok {
			s.retransmit(m.MH, img)
		}
		return
	}
	if _, ok := s.arriving[m.MH]; ok {
		return
	}
	s.arriving[m.MH] = &handoffWait{greetAt: s.w.Kernel.Now()}
	s.w.Wired.Send(s.id.Node(), m.OldMSS.Node(), msg.Dereg{MH: m.MH, NewMSS: s.id})
}

func (s *station) handleDereg(m msg.Dereg) {
	img := s.images[m.MH]
	delete(s.images, m.MH)
	s.forwardTo[m.MH] = m.NewMSS
	out := msg.ImageTransfer{MH: m.MH}
	if img != nil {
		for _, req := range img.order {
			if img.pending[req] {
				out.Pending = append(out.Pending, req)
			}
			if r, ok := img.results[req]; ok {
				out.Pending = append(out.Pending, req)
				out.Results = append(out.Results, r)
			}
		}
	}
	s.w.Wired.Send(s.id.Node(), m.NewMSS.Node(), out)
}

func (s *station) handleImage(m msg.ImageTransfer) {
	wait := s.arriving[m.MH]
	delete(s.arriving, m.MH)
	delete(s.forwardTo, m.MH)
	img := newImage()
	ri := 0
	for _, req := range m.Pending {
		if _, dup := img.pending[req]; dup || img.results[req] != nil {
			continue
		}
		img.order = append(img.order, req)
		img.pending[req] = true
	}
	// Pending entries that carried a result: the Dereg encoding appends
	// result-bearing requests after pure-pending ones, results aligned in
	// order.
	for _, req := range m.Pending[len(m.Pending)-len(m.Results):] {
		if ri >= len(m.Results) {
			break
		}
		img.results[req] = m.Results[ri]
		delete(img.pending, req)
		ri++
	}
	s.images[m.MH] = img
	s.w.Stats.Handoffs.Inc()
	if wait != nil {
		s.w.Stats.HandoffLatency.Observe(time.Duration(s.w.Kernel.Now() - wait.greetAt))
	}
	s.retransmit(m.MH, img)
	if wait != nil {
		for _, bm := range wait.buffered {
			s.HandleMessage(m.MH.Node(), bm)
		}
	}
}

// retransmit re-sends every buffered result to the MH.
func (s *station) retransmit(mh ids.MH, img *sessionImage) {
	for _, req := range img.order {
		if r, ok := img.results[req]; ok {
			s.w.Wireless.SendDownlink(s.id, mh, msg.ResultDeliver{Req: req, Payload: r})
		}
	}
}

func (s *station) handleRequest(m msg.Request) {
	mh := m.Req.Origin
	if wait, ok := s.arriving[mh]; ok {
		wait.buffered = append(wait.buffered, m)
		return
	}
	img, ok := s.images[mh]
	if !ok {
		if next, fwd := s.forwardTo[mh]; fwd {
			s.w.Wired.Send(s.id.Node(), next.Node(), m)
		}
		return
	}
	if img.pending[m.Req] || img.results[m.Req] != nil {
		return
	}
	img.pending[m.Req] = true
	img.order = append(img.order, m.Req)
	// The station itself is the fixed-side endpoint: the server replies
	// to whoever sent the request (Proxy.Host names this station).
	s.w.Wired.Send(s.id.Node(), m.Server.Node(), msg.ServerRequest{
		Proxy: ids.ProxyID{Host: s.id, Seq: uint32(mh)}, Req: m.Req, Payload: m.Payload,
	})
}

func (s *station) handleServerResult(m msg.ServerResult) {
	mh := m.Req.Origin
	if wait, ok := s.arriving[mh]; ok {
		wait.buffered = append(wait.buffered, m)
		return
	}
	img, ok := s.images[mh]
	if !ok {
		// The image moved while the reply was in flight: chase it.
		if next, fwd := s.forwardTo[mh]; fwd {
			s.w.Stats.ChasedResults.Inc()
			s.w.Wired.Send(s.id.Node(), next.Node(), m)
		}
		return
	}
	if img.results[m.Req] != nil {
		return // duplicate reply
	}
	delete(img.pending, m.Req)
	img.results[m.Req] = m.Payload
	s.w.Wireless.SendDownlink(s.id, mh, msg.ResultDeliver{Req: m.Req, Payload: m.Payload})
}

func (s *station) handleAck(m msg.AckMH) {
	img, ok := s.images[m.MH]
	if !ok {
		return
	}
	if img.results[m.Req] == nil {
		return
	}
	delete(img.results, m.Req)
	for i, q := range img.order {
		if q == m.Req {
			img.order = append(img.order[:i], img.order[i+1:]...)
			break
		}
	}
}

// Image returns the buffered pending/result counts for an MH at a
// station (test hook).
func (s *station) Image(mh ids.MH) (pending, buffered int) {
	img, ok := s.images[mh]
	if !ok {
		return 0, 0
	}
	return len(img.pending), len(img.results)
}

// StationImage exposes Image by station id (test hook on World).
func (w *World) StationImage(mss ids.MSS, mh ids.MH) (pending, buffered int) {
	return w.stations[mss].Image(mh)
}

// stationFor returns a station node (test hook).
func (w *World) stationFor(id ids.MSS) *station { return w.stations[id] }

// Mobile is the I-TCP client.
type Mobile struct {
	id       ids.MH
	w        *World
	cell     ids.MSS
	nextSeq  uint32
	seen     map[ids.RequestID]bool
	issuedAt map[ids.RequestID]sim.Time
}

// ID returns the mobile's identifier.
func (m *Mobile) ID() ids.MH { return m.id }

// Seen reports whether the result of req was received.
func (m *Mobile) Seen(req ids.RequestID) bool { return m.seen[req] }

// IssueRequest sends a request through the current station.
func (m *Mobile) IssueRequest(server ids.Server, payload []byte) ids.RequestID {
	m.nextSeq++
	req := ids.RequestID{Origin: m.id, Seq: m.nextSeq}
	m.issuedAt[req] = m.w.Kernel.Now()
	m.w.Stats.RequestsIssued.Inc()
	m.w.Wireless.SendUplink(m.id, m.cell, msg.Request{Req: req, Server: server, Payload: payload})
	return req
}

// HandleMessage implements netsim.Handler for the mobile's radio.
func (m *Mobile) HandleMessage(from ids.NodeID, mm msg.Message) {
	r, ok := mm.(msg.ResultDeliver)
	if !ok {
		return
	}
	dup := m.seen[r.Req]
	m.seen[r.Req] = true
	if dup {
		m.w.Stats.Duplicates.Inc()
	} else {
		m.w.Stats.ResultsDelivered.Inc()
		if at, known := m.issuedAt[r.Req]; known {
			m.w.Stats.ResultLatency.Observe(time.Duration(m.w.Kernel.Now() - at))
		}
	}
	m.w.Wireless.SendUplink(m.id, m.cell, msg.AckMH{MH: m.id, Req: r.Req})
}
