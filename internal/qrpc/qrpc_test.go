package qrpc

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
)

func build(mutate func(*rdpcore.Config)) *rdpcore.World {
	cfg := rdpcore.DefaultConfig()
	cfg.NumMSS = 4
	cfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
	cfg.ServerProc = netsim.Constant(50 * time.Millisecond)
	if mutate != nil {
		mutate(&cfg)
	}
	return rdpcore.NewWorld(cfg)
}

func TestInvokeWhileConnected(t *testing.T) {
	w := build(nil)
	mh := w.AddMH(1, 1)
	c := New(w, mh, Options{})
	var reply []byte
	w.Schedule(0, func() {
		c.Invoke(1, []byte("hi"), func(p []byte) { reply = p })
	})
	w.RunUntil(2 * time.Second)
	if string(reply) != "re:hi" {
		t.Fatalf("reply = %q, want %q", reply, "re:hi")
	}
	if c.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", c.Pending())
	}
	if c.Stats.Sent.Value() != 1 || c.Stats.Retries.Value() != 0 {
		t.Errorf("sent=%d retries=%d, want 1/0", c.Stats.Sent.Value(), c.Stats.Retries.Value())
	}
}

func TestInvokeWhileDisconnectedQueuesAndDrains(t *testing.T) {
	// "the actual sending of the RPC request is de-coupled from the QRPC
	// invocation and is performed as soon as the MH has established a
	// good communication link" (§4).
	w := build(nil)
	mh := w.AddMH(1, 1)
	c := New(w, mh, Options{Timeout: 200 * time.Millisecond})
	var replies int
	w.Schedule(0, func() { w.SetActive(1, false) })
	for i := 0; i < 3; i++ {
		at := time.Duration(i+1) * 50 * time.Millisecond
		w.Schedule(at, func() {
			c.Invoke(1, []byte("q"), func([]byte) { replies++ })
		})
	}
	w.RunUntil(time.Second)
	if replies != 0 {
		t.Fatal("replies arrived while the host slept and never transmitted")
	}
	w.Schedule(0, func() { w.SetActive(1, true) })
	w.RunUntil(5 * time.Second)
	if replies != 3 {
		t.Fatalf("replies = %d, want 3 after reconnection", replies)
	}
	if c.Stats.Completed.Value() != 3 {
		t.Errorf("Completed = %d, want 3", c.Stats.Completed.Value())
	}
}

func TestBackoffRecoversFromLoss(t *testing.T) {
	w := build(func(cfg *rdpcore.Config) { cfg.WirelessLoss = 0.5; cfg.Seed = 3 })
	mh := w.AddMH(1, 1)
	c := New(w, mh, Options{Timeout: 300 * time.Millisecond, MaxBackoff: 2 * time.Second})
	done := 0
	w.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			c.Invoke(1, []byte(fmt.Sprintf("q%d", i)), func([]byte) { done++ })
		}
	})
	w.RunUntil(2 * time.Minute)
	if done != 10 {
		t.Fatalf("completed %d of 10 under 50%% loss", done)
	}
	if c.Stats.Retries.Value() == 0 {
		t.Error("no retries under heavy loss; backoff inactive")
	}
}

func TestInvokeSurvivesMigrations(t *testing.T) {
	w := build(func(cfg *rdpcore.Config) { cfg.ServerProc = netsim.Constant(400 * time.Millisecond) })
	mh := w.AddMH(1, 1)
	c := New(w, mh, Options{})
	got := 0
	w.Schedule(0, func() { c.Invoke(1, []byte("x"), func([]byte) { got++ }) })
	for i := 1; i <= 8; i++ {
		cell := ids.MSS(i%4 + 1)
		w.Schedule(time.Duration(i)*60*time.Millisecond, func() { w.Migrate(1, cell) })
	}
	w.RunUntil(5 * time.Second)
	if got != 1 {
		t.Fatalf("completed %d, want 1", got)
	}
	if c.Stats.Retries.Value() != 0 {
		// Request sending needed no retries: RDP's result delivery did
		// the hard part.
		t.Logf("retries = %d (harmless)", c.Stats.Retries.Value())
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	// A host that stays disconnected keeps the invocation pending; once
	// awake, the first transmission goes out within MaxBackoff.
	w := build(nil)
	mh := w.AddMH(1, 1)
	c := New(w, mh, Options{Timeout: 100 * time.Millisecond, MaxBackoff: 800 * time.Millisecond})
	w.Schedule(0, func() { w.SetActive(1, false) })
	w.Schedule(10*time.Millisecond, func() { c.Invoke(1, []byte("q"), nil) })
	w.RunUntil(10 * time.Second) // long sleep: backoff fires, nothing transmits
	if c.Pending() != 1 {
		t.Fatalf("Pending = %d while disconnected, want 1", c.Pending())
	}
	if c.Stats.Retries.Value() != 0 {
		t.Fatalf("Retries = %d while disconnected, want 0 (no radio to retry on)", c.Stats.Retries.Value())
	}
	w.Schedule(0, func() { w.SetActive(1, true) })
	w.RunUntil(12 * time.Second)
	if c.Pending() != 0 {
		t.Fatalf("invocation still pending %v after reconnect", c.Pending())
	}
	if c.Stats.Sent.Value() != 1 {
		t.Errorf("Sent = %d, want 1", c.Stats.Sent.Value())
	}
}

func TestDuplicateResultsIgnored(t *testing.T) {
	// Aggressive timeout forces duplicate server flows; the reply
	// callback must run exactly once.
	w := build(func(cfg *rdpcore.Config) { cfg.Seed = 9 })
	mh := w.AddMH(1, 1)
	c := New(w, mh, Options{Timeout: 30 * time.Millisecond})
	replies := 0
	w.Schedule(0, func() { c.Invoke(1, []byte("q"), func([]byte) { replies++ }) })
	w.RunUntil(3 * time.Second)
	if replies != 1 {
		t.Fatalf("replies = %d, want exactly 1", replies)
	}
}
