// Package qrpc implements a Rover-style Queued RPC client on top of an
// RDP mobile host. The paper (§4) positions the two as complements: "In
// QRPC (asynchronous RPC) the actual sending of the RPC request is
// de-coupled from the QRPC invocation and is performed as soon as the
// MH has established a good communication link with a base station...
// While the first guarantees reliable sending of requests, RDP
// guarantees reliable result delivery."
//
// A Client therefore accepts invocations at any time — connected,
// sleeping, mid-hand-off — queues them durably on the host, transmits
// whenever the host is active, and retransmits on an exponential
// backoff until the result arrives through the RDP proxy. Combined with
// RDP's delivery guarantee this closes the loop end to end: every
// invocation eventually completes.
package qrpc

import (
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/rdpcore"
)

// Options tunes the sending discipline.
type Options struct {
	// Timeout is the initial retransmission timeout; each retry doubles
	// it up to MaxBackoff. Defaults: 1s and 16s.
	Timeout    time.Duration
	MaxBackoff time.Duration
}

func (o *Options) fill() {
	if o.Timeout <= 0 {
		o.Timeout = time.Second
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 16 * time.Second
	}
}

// Stats counts the client's sending activity.
type Stats struct {
	Invoked   metrics.Counter
	Sent      metrics.Counter // first transmissions
	Retries   metrics.Counter
	Completed metrics.Counter
}

// ReplyFunc consumes an invocation's result payload.
type ReplyFunc func(payload []byte)

// invocation is one queued RPC.
type invocation struct {
	req     ids.RequestID
	server  ids.Server
	payload []byte
	onReply ReplyFunc
	backoff time.Duration
}

// Client is the queued-RPC layer for one mobile host. It installs
// itself as the host's result observer; install any application
// callback through Invoke's reply function rather than
// MobileHost.OnResult.
//
// Like all protocol state, a Client must only be used from scheduler
// callbacks (or a live runtime's Do).
type Client struct {
	world *rdpcore.World
	mh    *rdpcore.MHNode
	id    ids.MH
	opts  Options
	Stats Stats

	pending map[ids.RequestID]*invocation
	order   []ids.RequestID
}

// New wraps a mobile host in a queued-RPC client.
func New(world *rdpcore.World, mh *rdpcore.MHNode, opts Options) *Client {
	opts.fill()
	c := &Client{
		world:   world,
		mh:      mh,
		id:      mh.ID(),
		opts:    opts,
		pending: make(map[ids.RequestID]*invocation),
	}
	mh.OnResult(c.onResult)
	return c
}

// Pending returns the number of invocations still awaiting results.
func (c *Client) Pending() int { return len(c.pending) }

// Invoke queues one RPC. The invocation is accepted regardless of
// connectivity; onReply (optional) runs when the result arrives. The
// returned identifier can be matched against MobileHost.Seen.
func (c *Client) Invoke(server ids.Server, payload []byte, onReply ReplyFunc) ids.RequestID {
	c.Stats.Invoked.Inc()
	// The RDP request is created up-front (it pins the request id and
	// the issue timestamp) and enters the sending pipeline immediately:
	// the MH transmits it now if active, or queues it for its next
	// activation. Either way the invocation is on its way, so it counts
	// as sent; the backoff timer only produces retries.
	req := c.mh.IssueRequest(server, payload)
	c.Stats.Sent.Inc()
	inv := &invocation{
		req: req, server: server, payload: payload,
		onReply: onReply, backoff: c.opts.Timeout,
	}
	c.pending[req] = inv
	c.order = append(c.order, req)
	c.schedule(inv)
	return req
}

// schedule arms the retransmission timer for one invocation.
func (c *Client) schedule(inv *invocation) {
	c.world.Kernel.Defer(inv.backoff, func() { c.fire(inv) })
}

// fire retransmits an unanswered invocation when possible and re-arms
// its backoff.
func (c *Client) fire(inv *invocation) {
	if _, waiting := c.pending[inv.req]; !waiting {
		return
	}
	if c.world.IsActive(c.id) && c.mh.Joined() {
		c.Stats.Retries.Inc()
		c.mh.Retransmit(inv.req, inv.server, inv.payload)
	}
	if inv.backoff < c.opts.MaxBackoff {
		inv.backoff *= 2
		if inv.backoff > c.opts.MaxBackoff {
			inv.backoff = c.opts.MaxBackoff
		}
	}
	c.schedule(inv)
}

// onResult completes invocations as their results arrive.
func (c *Client) onResult(req ids.RequestID, payload []byte, duplicate bool) {
	inv, ok := c.pending[req]
	if !ok || duplicate {
		return
	}
	delete(c.pending, req)
	for i, r := range c.order {
		if r == req {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.Stats.Completed.Inc()
	if inv.onReply != nil {
		inv.onReply(payload)
	}
}
