package aggstate

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestSetAgainstMapModel churns a Set against a map reference across
// the array/bitmap promotion boundary in both directions.
func TestSetAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	s := &Set{}
	model := map[uint32]bool{}
	for i := 0; i < 200000; i++ {
		// Two dense chunks plus a sparse tail exercises promotion,
		// demotion and chunk drop.
		v := uint32(rng.Intn(3 * 65536))
		if rng.Intn(3) == 0 {
			if s.Remove(v) != model[v] {
				t.Fatalf("Remove(%d) changed=%v, model=%v", v, !model[v], model[v])
			}
			delete(model, v)
		} else {
			if s.Add(v) == model[v] {
				t.Fatalf("Add(%d) changed=%v, model has=%v", v, !model[v], model[v])
			}
			model[v] = true
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len=%d, model=%d", s.Len(), len(model))
	}
	for v := range model {
		if !s.Contains(v) {
			t.Fatalf("missing %d", v)
		}
	}
	prev := int64(-1)
	count := 0
	s.ForEach(func(v uint32) {
		if int64(v) <= prev {
			t.Fatalf("iteration not ascending: %d after %d", v, prev)
		}
		if !model[v] {
			t.Fatalf("phantom member %d", v)
		}
		prev = int64(v)
		count++
	})
	if count != len(model) {
		t.Fatalf("iterated %d members, model has %d", count, len(model))
	}
}

// TestPromoteDemote pins the container transitions and that MemBytes
// shrinks again after heavy removal.
func TestPromoteDemote(t *testing.T) {
	s := &Set{}
	for v := uint32(0); v <= arrayMax; v++ {
		s.Add(v)
	}
	if s.chunks[0].bm == nil {
		t.Fatalf("chunk not promoted at %d members", s.Len())
	}
	dense := s.MemBytes()
	for v := uint32(100); v <= arrayMax; v++ {
		s.Remove(v)
	}
	if s.chunks[0].bm != nil {
		t.Fatalf("chunk not demoted at %d members", s.Len())
	}
	if got := s.MemBytes(); got >= dense {
		t.Fatalf("MemBytes did not shrink after demotion: %d >= %d", got, dense)
	}
	for v := uint32(0); v < 100; v++ {
		s.Remove(v)
	}
	if s.Len() != 0 || len(s.chunks) != 0 {
		t.Fatalf("emptied set retains chunks: len=%d chunks=%d", s.Len(), len(s.chunks))
	}
}

// TestDeltaRoundTrip checks encode/decode identity on assorted shapes.
func TestDeltaRoundTrip(t *testing.T) {
	shapes := [][]uint32{
		nil,
		{0},
		{0, 1, 2, 3, 4},
		{7, 70, 700, 70000, 7000000, 4294967295},
	}
	rng := rand.New(rand.NewSource(7))
	dense := make([]uint32, 0, 9000)
	seen := map[uint32]bool{}
	for len(dense) < 9000 {
		v := uint32(rng.Intn(20000))
		if !seen[v] {
			seen[v] = true
			dense = append(dense, v)
		}
	}
	shapes = append(shapes, dense)
	for i, vs := range shapes {
		s := &Set{}
		for _, v := range vs {
			s.Add(v)
		}
		enc := s.AppendDelta(nil)
		got, err := DecodeDelta(enc)
		if err != nil {
			t.Fatalf("shape %d: decode: %v", i, err)
		}
		if got.Len() != s.Len() {
			t.Fatalf("shape %d: len %d != %d", i, got.Len(), s.Len())
		}
		if !bytes.Equal(got.AppendDelta(nil), enc) {
			t.Fatalf("shape %d: re-encode differs", i)
		}
	}
}

// TestDecodeDeltaRejects feeds malformed inputs; none may decode.
func TestDecodeDeltaRejects(t *testing.T) {
	bad := [][]byte{
		{},                 // no count
		{2, 1},             // truncated members
		{2, 1, 0},          // zero gap after first member
		{3, 1, 1, 1, 9},    // trailing bytes
		{255, 255, 255, 1}, // count exceeds input
		{2, 255, 255, 255, 255, 255, 255, 255, 255, 255, 1, 1}, // out of uint32 range
	}
	for i, b := range bad {
		if s, err := DecodeDelta(b); err == nil {
			t.Fatalf("input %d decoded to %d members, want error", i, s.Len())
		}
	}
}

// TestCloneIndependence verifies Clone shares no storage.
func TestCloneIndependence(t *testing.T) {
	s := &Set{}
	for v := uint32(0); v < 5000; v++ {
		s.Add(v * 3)
	}
	c := s.Clone()
	s.Remove(3)
	s.Add(1)
	if !c.Contains(3) || c.Contains(1) {
		t.Fatalf("clone shares storage with original")
	}
}

func BenchmarkAdd(b *testing.B) {
	s := &Set{}
	for i := 0; i < b.N; i++ {
		s.Add(uint32(i))
	}
}
