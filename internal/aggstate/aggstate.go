// Package aggstate provides the compact membership structure behind
// E16's aggregated location state: a sorted set of uint32 keys (mobile
// host identifiers) held in roaring-style chunked containers, plus a
// delta-encoded wire form for shipping memberships inside aggregate
// protocol messages and checkpoint records.
//
// Layout: keys are split into a 16-bit chunk prefix and a 16-bit low
// part. Each chunk holds its low parts either as a sorted uint16 array
// (sparse) or as a 65536-bit bitmap (dense); containers promote at
// arrayMax members and demote again when churn empties them out, so
// MemBytes tracks the true resident cost of a membership whatever its
// density. Iteration is always in ascending key order, which keeps
// every consumer deterministic.
package aggstate

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

const (
	// arrayMax is the promotion threshold: a chunk with more members
	// becomes a bitmap (8 KiB), the break-even point against a sorted
	// uint16 array of the same cardinality.
	arrayMax = 4096
	// demoteMin is the demotion threshold: a bitmap chunk that shrinks
	// below it converts back to an array, with hysteresis against
	// promote/demote flapping at the boundary.
	demoteMin = 2048
	// bmWords is the bitmap length in 64-bit words (65536 bits).
	bmWords = 65536 / 64
)

// Set is a compact sorted set of uint32 keys. The zero value is an
// empty set ready for use.
type Set struct {
	chunks []*chunk
	n      int
}

type chunk struct {
	hi  uint16
	arr []uint16 // sorted low parts; nil once promoted
	bm  []uint64 // bitmap of low parts; nil while an array
}

func split(v uint32) (hi, lo uint16) { return uint16(v >> 16), uint16(v) }

// find locates the chunk index for hi, and whether it exists.
func (s *Set) find(hi uint16) (int, bool) {
	i := sort.Search(len(s.chunks), func(i int) bool { return s.chunks[i].hi >= hi })
	return i, i < len(s.chunks) && s.chunks[i].hi == hi
}

// Add inserts v, reporting whether the set changed.
func (s *Set) Add(v uint32) bool {
	hi, lo := split(v)
	i, ok := s.find(hi)
	if !ok {
		c := &chunk{hi: hi, arr: []uint16{lo}}
		s.chunks = append(s.chunks, nil)
		copy(s.chunks[i+1:], s.chunks[i:])
		s.chunks[i] = c
		s.n++
		return true
	}
	c := s.chunks[i]
	if c.bm != nil {
		w, b := lo>>6, uint64(1)<<(lo&63)
		if c.bm[w]&b != 0 {
			return false
		}
		c.bm[w] |= b
		s.n++
		return true
	}
	j := sort.Search(len(c.arr), func(j int) bool { return c.arr[j] >= lo })
	if j < len(c.arr) && c.arr[j] == lo {
		return false
	}
	c.arr = append(c.arr, 0)
	copy(c.arr[j+1:], c.arr[j:])
	c.arr[j] = lo
	s.n++
	if len(c.arr) > arrayMax {
		c.promote()
	}
	return true
}

// Remove deletes v, reporting whether the set changed. An emptied chunk
// is released entirely.
func (s *Set) Remove(v uint32) bool {
	hi, lo := split(v)
	i, ok := s.find(hi)
	if !ok {
		return false
	}
	c := s.chunks[i]
	if c.bm != nil {
		w, b := lo>>6, uint64(1)<<(lo&63)
		if c.bm[w]&b == 0 {
			return false
		}
		c.bm[w] &^= b
		s.n--
		if n := c.card(); n == 0 {
			s.dropChunk(i)
		} else if n < demoteMin {
			c.demote()
		}
		return true
	}
	j := sort.Search(len(c.arr), func(j int) bool { return c.arr[j] >= lo })
	if j >= len(c.arr) || c.arr[j] != lo {
		return false
	}
	c.arr = append(c.arr[:j], c.arr[j+1:]...)
	s.n--
	if len(c.arr) == 0 {
		s.dropChunk(i)
	}
	return true
}

func (s *Set) dropChunk(i int) {
	copy(s.chunks[i:], s.chunks[i+1:])
	s.chunks[len(s.chunks)-1] = nil
	s.chunks = s.chunks[:len(s.chunks)-1]
}

// Contains reports membership of v.
func (s *Set) Contains(v uint32) bool {
	hi, lo := split(v)
	i, ok := s.find(hi)
	if !ok {
		return false
	}
	c := s.chunks[i]
	if c.bm != nil {
		return c.bm[lo>>6]&(uint64(1)<<(lo&63)) != 0
	}
	j := sort.Search(len(c.arr), func(j int) bool { return c.arr[j] >= lo })
	return j < len(c.arr) && c.arr[j] == lo
}

// Len returns the number of members.
func (s *Set) Len() int { return s.n }

// ForEach visits every member in ascending order.
func (s *Set) ForEach(fn func(uint32)) {
	for _, c := range s.chunks {
		base := uint32(c.hi) << 16
		if c.bm != nil {
			for w, word := range c.bm {
				for word != 0 {
					b := bits.TrailingZeros64(word)
					fn(base | uint32(w<<6+b))
					word &= word - 1
				}
			}
			continue
		}
		for _, lo := range c.arr {
			fn(base | uint32(lo))
		}
	}
}

// Members returns the sorted member slice (convenience for tests and
// small sets; allocates).
func (s *Set) Members() []uint32 {
	out := make([]uint32, 0, s.n)
	s.ForEach(func(v uint32) { out = append(out, v) })
	return out
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	out := &Set{n: s.n, chunks: make([]*chunk, len(s.chunks))}
	for i, c := range s.chunks {
		cc := &chunk{hi: c.hi}
		if c.bm != nil {
			cc.bm = append([]uint64(nil), c.bm...)
		} else {
			cc.arr = append([]uint16(nil), c.arr...)
		}
		out.chunks[i] = cc
	}
	return out
}

// MemBytes estimates the resident heap cost of the set: container
// headers plus backing storage at capacity. The model matches the
// StateBytes accounting in rdpcore (documented constants, not
// unsafe.Sizeof probing) so experiment rows are reproducible across
// architectures.
func (s *Set) MemBytes() int {
	// Set header (slice header + count) plus per-chunk pointer.
	b := 32 + 8*cap(s.chunks)
	for _, c := range s.chunks {
		b += 56 // chunk struct: hi + two slice headers, rounded
		if c.bm != nil {
			b += 8 * bmWords
		} else {
			b += 2 * cap(c.arr)
		}
	}
	return b
}

func (c *chunk) promote() {
	bm := make([]uint64, bmWords)
	for _, lo := range c.arr {
		bm[lo>>6] |= uint64(1) << (lo & 63)
	}
	c.bm, c.arr = bm, nil
}

func (c *chunk) demote() {
	arr := make([]uint16, 0, demoteMin)
	for w, word := range c.bm {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			arr = append(arr, uint16(w<<6+b))
			word &= word - 1
		}
	}
	c.arr, c.bm = arr, nil
}

func (c *chunk) card() int {
	n := 0
	for _, w := range c.bm {
		n += bits.OnesCount64(w)
	}
	return n
}

// AppendDelta appends the set's delta-encoded wire form to dst: a
// uvarint member count followed by uvarint gaps between consecutive
// (ascending) members — the first gap is the first member itself, every
// later gap is strictly positive. Dense memberships of sequential host
// identifiers collapse to one byte per member.
func (s *Set) AppendDelta(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.n))
	prev := uint64(0)
	first := true
	s.ForEach(func(v uint32) {
		d := uint64(v) - prev
		if first {
			d = uint64(v)
			first = false
		}
		dst = binary.AppendUvarint(dst, d)
		prev = uint64(v)
	})
	return dst
}

// DecodeDelta parses a delta-encoded membership produced by
// AppendDelta. It rejects short input, non-monotonic gaps and values
// past the uint32 range, so it is safe on untrusted bytes.
func DecodeDelta(b []byte) (*Set, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("aggstate: bad member count")
	}
	if count > uint64(len(b))*8 { // each member needs >= 1 bit of input
		return nil, fmt.Errorf("aggstate: member count %d exceeds input", count)
	}
	b = b[n:]
	s := &Set{}
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		d, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("aggstate: truncated member %d", i)
		}
		b = b[n:]
		v := prev + d
		if i > 0 && d == 0 {
			return nil, fmt.Errorf("aggstate: non-increasing member %d", i)
		}
		if v > 1<<32-1 {
			return nil, fmt.Errorf("aggstate: member %d out of range", i)
		}
		prev = v
		s.Add(uint32(v))
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("aggstate: %d trailing bytes", len(b))
	}
	return s, nil
}
