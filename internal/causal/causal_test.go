package causal

import (
	"math/rand"
	"testing"
)

// harness wires a group of endpoints to an in-test "network" in which
// the test controls arrival order explicitly.
type harness struct {
	eps       []*Endpoint
	delivered [][]any // per destination, in delivery order
}

func newHarness(n int) *harness {
	h := &harness{delivered: make([][]any, n)}
	h.eps = Group(n, func(dst int, payload any) {
		h.delivered[dst] = append(h.delivered[dst], payload)
	})
	return h
}

// inFlight is a message on the wire.
type inFlight struct {
	st      Stamp
	dst     int
	payload any
}

func (h *harness) send(from, to int, payload any) inFlight {
	return inFlight{st: h.eps[from].Send(to), dst: to, payload: payload}
}

func (h *harness) arrive(m inFlight) {
	h.eps[m.dst].Receive(m.st, m.payload)
}

func TestDirectDependencyHeldBack(t *testing.T) {
	// P0 sends m1 to P2, then m2 to P1; P1 delivers m2 and sends m3 to
	// P2. m3 causally follows m1 (via P0's send order? No — m1 -> m2 is
	// program order at P0, m2 -> m3 is deliver-then-send at P1, so
	// m1 -> m3). If m3 arrives at P2 before m1, it must be buffered.
	h := newHarness(3)
	m1 := h.send(0, 2, "m1")
	m2 := h.send(0, 1, "m2")
	h.arrive(m2)
	m3 := h.send(1, 2, "m3")

	h.arrive(m3) // out of causal order
	if got := len(h.delivered[2]); got != 0 {
		t.Fatalf("m3 delivered before its causal predecessor m1 (delivered=%v)", h.delivered[2])
	}
	if h.eps[2].Queued() != 1 {
		t.Fatalf("Queued = %d, want 1", h.eps[2].Queued())
	}
	h.arrive(m1)
	want := []any{"m1", "m3"}
	if len(h.delivered[2]) != 2 || h.delivered[2][0] != want[0] || h.delivered[2][1] != want[1] {
		t.Fatalf("delivery order = %v, want %v", h.delivered[2], want)
	}
}

func TestFIFOBetweenPair(t *testing.T) {
	// Two messages from the same sender to the same receiver are causally
	// ordered; reversing arrival must not reverse delivery.
	h := newHarness(2)
	a := h.send(0, 1, "a")
	b := h.send(0, 1, "b")
	h.arrive(b)
	if len(h.delivered[1]) != 0 {
		t.Fatal("second message delivered before first")
	}
	h.arrive(a)
	if len(h.delivered[1]) != 2 || h.delivered[1][0] != "a" || h.delivered[1][1] != "b" {
		t.Fatalf("delivery order = %v", h.delivered[1])
	}
}

func TestConcurrentMessagesDeliverInArrivalOrder(t *testing.T) {
	// P0 and P1 send to P2 with no causal relation; arrival order rules.
	h := newHarness(3)
	a := h.send(0, 2, "a")
	b := h.send(1, 2, "b")
	h.arrive(b)
	h.arrive(a)
	if len(h.delivered[2]) != 2 || h.delivered[2][0] != "b" || h.delivered[2][1] != "a" {
		t.Fatalf("delivery order = %v, want [b a]", h.delivered[2])
	}
}

func TestPaperHandoffScenario(t *testing.T) {
	// The exactly-once argument of §5:
	//   send(Ack)@MssO -> send(Ack,del-proxy)@MssO -> send(update_currl)@MssN
	// The proxy host must deliver the forwarded Ack before the
	// update_currentLoc even if the update arrives first.
	//
	// Processes: 0 = MssO, 1 = MssN, 2 = MssP (proxy host).
	h := newHarness(3)
	ack := h.send(0, 2, "ack-fwd")         // MssO forwards the MH's ack to the proxy
	dereg := h.send(0, 1, "deregack")      // then completes hand-off with MssN
	h.arrive(dereg)                        // MssN learns of the hand-off...
	update := h.send(1, 2, "update-currl") // ...and updates the proxy

	h.arrive(update) // network delivers update first
	h.arrive(ack)
	got := h.delivered[2]
	if len(got) != 2 || got[0] != "ack-fwd" || got[1] != "update-currl" {
		t.Fatalf("proxy delivery order = %v, want [ack-fwd update-currl]", got)
	}
}

func TestSendToSelfPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range destination must panic")
		}
	}()
	h := newHarness(2)
	h.eps[0].Send(5)
}

// causalPred records, for a randomized run, which messages causally
// precede which, so the property test can verify delivery respects it.
func TestRandomizedCausalOrderProperty(t *testing.T) {
	const (
		nodes  = 5
		nMsgs  = 300
		trials = 30
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		h := newHarness(nodes)

		type sentMsg struct {
			id   int
			vc   []uint64 // Lamport vector timestamp of the send event
			dst  int
			wire inFlight
		}

		// Shadow vector clocks track ground-truth causality independently
		// of the implementation under test.
		vcs := make([][]uint64, nodes)
		for i := range vcs {
			vcs[i] = make([]uint64, nodes)
		}
		tick := func(i int) []uint64 {
			vcs[i][i]++
			c := make([]uint64, nodes)
			copy(c, vcs[i])
			return c
		}
		merge := func(i int, v []uint64) {
			for k := range v {
				if v[k] > vcs[i][k] {
					vcs[i][k] = v[k]
				}
			}
		}
		leq := func(a, b []uint64) bool {
			for k := range a {
				if a[k] > b[k] {
					return false
				}
			}
			return true
		}

		var wire []sentMsg
		sentVC := make(map[int][]uint64)
		deliveredOrder := make(map[int][]int) // per-destination message ids
		h2 := &harness{delivered: make([][]any, nodes)}
		h2.eps = Group(nodes, func(dst int, payload any) {
			id := payload.(int)
			deliveredOrder[dst] = append(deliveredOrder[dst], id)
			merge(dst, sentVC[id])
			vcs[dst][dst]++
		})
		h = h2

		nextID := 0
		for len(wire) > 0 || nextID < nMsgs {
			// Randomly either send a new message or deliver one in flight.
			if nextID < nMsgs && (len(wire) == 0 || rng.Intn(2) == 0) {
				from := rng.Intn(nodes)
				to := rng.Intn(nodes)
				for to == from {
					to = rng.Intn(nodes)
				}
				vc := tick(from)
				m := sentMsg{id: nextID, vc: vc, dst: to, wire: h.send(from, to, nextID)}
				sentVC[nextID] = vc
				nextID++
				wire = append(wire, m)
				continue
			}
			i := rng.Intn(len(wire))
			m := wire[i]
			wire = append(wire[:i], wire[i+1:]...)
			h.arrive(m.wire)
		}

		// All messages must eventually be delivered (reliability).
		total := 0
		for _, order := range deliveredOrder {
			total += len(order)
		}
		if total != nMsgs {
			t.Fatalf("trial %d: delivered %d of %d messages", trial, total, nMsgs)
		}

		// Causal order: if send(a) -> send(b) and same destination, a is
		// delivered before b.
		for dst, order := range deliveredOrder {
			pos := make(map[int]int, len(order))
			for p, id := range order {
				pos[id] = p
			}
			for _, a := range order {
				for _, b := range order {
					if a == b {
						continue
					}
					if leq(sentVC[a], sentVC[b]) && !leq(sentVC[b], sentVC[a]) {
						if pos[a] > pos[b] {
							t.Fatalf("trial %d dst %d: causal order violated: %d delivered after %d", trial, dst, a, b)
						}
					}
				}
			}
		}
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(3)
	m[1][2] = 7
	c := m.Clone()
	c[1][2] = 9
	if m[1][2] != 7 {
		t.Error("Clone aliases the original")
	}
}

func TestMatrixMaxInPlace(t *testing.T) {
	a := NewMatrix(2)
	b := NewMatrix(2)
	a[0][1] = 3
	b[0][1] = 5
	b[1][0] = 2
	a.MaxInPlace(b)
	if a[0][1] != 5 || a[1][0] != 2 {
		t.Errorf("MaxInPlace = %v", a)
	}
}

func BenchmarkCausalSendReceive(b *testing.B) {
	eps := Group(8, func(int, any) {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		from := i % 8
		to := (i + 1) % 8
		st := eps[from].Send(to)
		eps[to].Receive(st, i)
	}
}

func TestSelfSendDoesNotWedgeOtherSenders(t *testing.T) {
	// Regression for a double count found by the adversarial explorer: a
	// process sending to itself must not inflate sent[i][i], or every
	// later message from other senders (whose stamps merge the inflated
	// count) blocks forever.
	h := newHarness(2)
	// P1 sends to itself twice and delivers both.
	s1 := h.send(1, 1, "self-a")
	h.arrive(s1)
	s2 := h.send(1, 1, "self-b")
	h.arrive(s2)
	if len(h.delivered[1]) != 2 {
		t.Fatalf("self deliveries = %d, want 2", len(h.delivered[1]))
	}
	// P1 tells P0 about its state; P0's later message to P1 must still
	// be deliverable.
	toP0 := h.send(1, 0, "state")
	h.arrive(toP0)
	fromP0 := h.send(0, 1, "hello")
	h.arrive(fromP0)
	if len(h.delivered[1]) != 3 || h.delivered[1][2] != "hello" {
		t.Fatalf("message from P0 wedged: delivered=%v queued=%d", h.delivered[1], h.eps[1].Queued())
	}
}

func TestIndexReportsPosition(t *testing.T) {
	h := newHarness(4)
	for i, ep := range h.eps {
		if ep.Index() != i {
			t.Errorf("endpoint %d reports Index %d", i, ep.Index())
		}
	}
}

func TestQueuedPayloadsDiagnostics(t *testing.T) {
	// Same shape as TestDirectDependencyHeldBack; while m3 is blocked the
	// diagnostics must name the missing predecessor's sender (P0) and the
	// shortfall (1 message).
	h := newHarness(3)
	m1 := h.send(0, 2, "m1")
	m2 := h.send(0, 1, "m2")
	h.arrive(m2)
	m3 := h.send(1, 2, "m3")
	h.arrive(m3)

	infos := h.eps[2].QueuedPayloads()
	if len(infos) != 1 {
		t.Fatalf("QueuedPayloads = %d entries, want 1", len(infos))
	}
	info := infos[0]
	if info.From != 1 || info.Payload != "m3" {
		t.Errorf("blocked message = from %d payload %v, want from 1 payload m3", info.From, info.Payload)
	}
	if len(info.BlockedOn) != 1 || info.BlockedOn[0] != 0 {
		t.Errorf("BlockedOn = %v, want [0]", info.BlockedOn)
	}
	if len(info.Missing) != 1 || info.Missing[0] != 1 {
		t.Errorf("Missing = %v, want [1]", info.Missing)
	}

	h.arrive(m1)
	if got := h.eps[2].QueuedPayloads(); len(got) != 0 {
		t.Errorf("QueuedPayloads after unblocking = %v, want empty", got)
	}
}
