package causal

import (
	"fmt"
	"math/rand"
	"testing"
)

// The property-based suite drives random concurrent histories through
// the RST endpoints with an adversarial (arbitrarily reordering)
// transport and checks the two properties the protocol stack depends
// on:
//
//  1. safety — the delivery order at every process never violates
//     happens-before among sends, judged against vector clocks the test
//     maintains independently of the implementation;
//  2. liveness — once every in-flight message has arrived, no endpoint
//     still buffers anything.
//
// Each history runs twice, pooled and unpooled, and must deliver the
// identical sequences — guarding the recycling fast path against
// corruption that would only surface as subtly different stamps.

// propMsg is one message of a generated history.
type propMsg struct {
	id       int
	src, dst int
	vc       []uint64 // sender's vector clock at send time (test-side truth)
	st       Stamp
}

// propRun replays one random history (fixed by seed) through a group
// and returns the per-process delivery orders.
func propRun(t *testing.T, seed int64, pooled bool) (delivered [][]int, msgs []*propMsg) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(4)
	ops := 150 + rng.Intn(100)

	var byID []*propMsg
	delivered = make([][]int, n)
	// vcs is the test-maintained vector clock per process — the
	// independent truth the implementation is judged against.
	vcs := make([][]uint64, n)
	for i := range vcs {
		vcs[i] = make([]uint64, n)
	}
	eps := Group(n, func(dst int, payload any) {
		m := byID[payload.(int)]
		if m.dst != dst {
			t.Fatalf("seed %d: message %d for %d delivered to %d", seed, m.id, m.dst, dst)
		}
		delivered[dst] = append(delivered[dst], m.id)
		// Receiving extends the destination's causal past.
		for k, v := range m.vc {
			if v > vcs[dst][k] {
				vcs[dst][k] = v
			}
		}
	}, Pooled(pooled))
	var inflight []*propMsg
	arrive := func(i int) {
		m := inflight[i]
		inflight[i] = inflight[len(inflight)-1]
		inflight = inflight[:len(inflight)-1]
		eps[m.dst].Receive(m.st, m.id)
	}
	for op := 0; op < ops; op++ {
		if len(inflight) > 0 && rng.Intn(100) < 40 {
			arrive(rng.Intn(len(inflight)))
			continue
		}
		src := rng.Intn(n)
		dst := rng.Intn(n)
		vcs[src][src]++
		m := &propMsg{id: len(byID), src: src, dst: dst, vc: append([]uint64(nil), vcs[src]...)}
		m.st = eps[src].Send(dst)
		byID = append(byID, m)
		inflight = append(inflight, m)
	}
	for len(inflight) > 0 {
		arrive(rng.Intn(len(inflight)))
	}
	for i, ep := range eps {
		if q := ep.Queued(); q != 0 {
			t.Fatalf("seed %d pooled=%v: endpoint %d still buffers %d messages after full arrival", seed, pooled, i, q)
		}
	}
	return delivered, byID
}

// happensBefore reports send(a) → send(b) under vector-clock order.
func happensBefore(a, b *propMsg) bool {
	if a.id == b.id {
		return false
	}
	leq := true
	for k := range a.vc {
		if a.vc[k] > b.vc[k] {
			leq = false
			break
		}
	}
	return leq
}

func TestCausalDeliveryProperties(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			plain, msgs := propRun(t, seed, false)
			pooled, _ := propRun(t, seed, true)

			// Safety: no process delivers b before a when send(a) → send(b).
			for p, order := range plain {
				for i := 0; i < len(order); i++ {
					for j := i + 1; j < len(order); j++ {
						earlier, later := msgs[order[i]], msgs[order[j]]
						if happensBefore(later, earlier) {
							t.Fatalf("process %d delivered %d before %d despite send(%d) → send(%d)",
								p, earlier.id, later.id, later.id, earlier.id)
						}
					}
				}
			}

			// Pooling must not change behavior.
			for p := range plain {
				if len(plain[p]) != len(pooled[p]) {
					t.Fatalf("process %d: pooled delivered %d msgs, unpooled %d", p, len(pooled[p]), len(plain[p]))
				}
				for i := range plain[p] {
					if plain[p][i] != pooled[p][i] {
						t.Fatalf("process %d: delivery order diverges at %d: pooled %v vs %v", p, i, pooled[p], plain[p])
					}
				}
			}
		})
	}
}

// BenchmarkCausalSendReceivePooled is the pooled counterpart of
// BenchmarkCausalSendReceive: steady-state stamp traffic with recycled
// matrices and buffer entries.
func BenchmarkCausalSendReceivePooled(b *testing.B) {
	eps := Group(8, func(int, any) {}, Pooled(true))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		from := i % 8
		to := (i + 1) % 8
		st := eps[from].Send(to)
		eps[to].Receive(st, i)
	}
}
