// Package causal implements causal-order point-to-point message delivery
// for a fixed group of processes, using the Raynal–Schiper–Toueg (RST)
// algorithm with matrix clocks.
//
// The paper's system model (assumption 1) requires that "communication
// among the MSSs is reliable and message delivery is in causal order";
// the exactly-once argument of §5 leans on it directly (the Ack forwarded
// by the old MSS must reach the proxy before the new MSS's
// update_currentLoc). Rather than assuming the property, this package
// provides it over any reliable FIFO-less transport, and lets experiment
// E2 switch it off to demonstrate the duplicate deliveries the paper
// predicts.
//
// RST sketch: every process i keeps SENT[j][k] — the number of messages
// sent from j to k that i knows about — and DELIV[j], the number of
// messages from j it has delivered. A message from i to j piggybacks i's
// SENT matrix taken before the send; the receiver delays delivery until
// DELIV[k] >= ST[k][receiver] for every k, i.e. until it has delivered
// every message destined to it that the sender knew about.
package causal

import (
	"fmt"
	"sync"
)

// Matrix is an n×n counter matrix; Matrix[j][k] counts messages sent
// from process j to process k.
type Matrix [][]uint64

// NewMatrix returns a zero n×n matrix backed by one allocation.
func NewMatrix(n int) Matrix {
	backing := make([]uint64, n*n)
	m := make(Matrix, n)
	for i := range m {
		m[i] = backing[i*n : (i+1)*n : (i+1)*n]
	}
	return m
}

// Clone returns a deep copy of the matrix.
func (m Matrix) Clone() Matrix {
	c := NewMatrix(len(m))
	c.CopyFrom(m)
	return c
}

// CopyFrom overwrites m with the contents of o. Both matrices must have
// the same dimensions.
func (m Matrix) CopyFrom(o Matrix) {
	for i := range m {
		copy(m[i], o[i])
	}
}

// MaxInPlace sets m to the element-wise maximum of m and o.
func (m Matrix) MaxInPlace(o Matrix) {
	for i := range m {
		for j := range m[i] {
			if o[i][j] > m[i][j] {
				m[i][j] = o[i][j]
			}
		}
	}
}

// Stamp is the causal metadata piggybacked on each message.
type Stamp struct {
	From int    // sending process index
	Sent Matrix // sender's SENT matrix, snapshot taken before the send
}

// Deliver is the callback invoked when a buffered message becomes
// deliverable. The payload is whatever was passed to Endpoint.Receive.
type Deliver func(payload any)

// pending is a received-but-not-yet-deliverable message.
type pending struct {
	st      Stamp
	payload any
	seq     uint64 // arrival order, for stable delivery of concurrent msgs
}

// pool recycles the per-message allocations of a causal group: the SENT
// snapshot each Send takes and the buffer entry each Receive creates.
// The mutex makes recycling race-clean when different endpoints of one
// group run under different locks (the livenet arrangement); under the
// single-threaded kernel it is uncontended.
type pool struct {
	mu   sync.Mutex
	n    int
	mats []Matrix
	pend []*pending
}

func (p *pool) getMatrix() Matrix {
	p.mu.Lock()
	var m Matrix
	if k := len(p.mats); k > 0 {
		m = p.mats[k-1]
		p.mats[k-1] = nil
		p.mats = p.mats[:k-1]
	}
	p.mu.Unlock()
	if m == nil {
		m = NewMatrix(p.n)
	}
	return m
}

func (p *pool) putMatrix(m Matrix) {
	p.mu.Lock()
	p.mats = append(p.mats, m)
	p.mu.Unlock()
}

func (p *pool) getPending() *pending {
	p.mu.Lock()
	var pd *pending
	if k := len(p.pend); k > 0 {
		pd = p.pend[k-1]
		p.pend[k-1] = nil
		p.pend = p.pend[:k-1]
	}
	p.mu.Unlock()
	if pd == nil {
		pd = new(pending)
	}
	return pd
}

func (p *pool) putPending(pd *pending) {
	pd.st = Stamp{}
	pd.payload = nil
	p.mu.Lock()
	p.pend = append(p.pend, pd)
	p.mu.Unlock()
}

// Endpoint is one process's view of the causal group. Endpoints are not
// safe for concurrent use; the simulation kernel serializes access, and
// the livenet runtime guards each endpoint with the owning node's loop.
type Endpoint struct {
	idx     int
	n       int
	sent    Matrix
	deliv   []uint64
	buffer  []*pending
	nextSeq uint64
	deliver Deliver
	pool    *pool // non-nil when recycling is enabled for the group

	// Buffered counts the high-water mark of the delay buffer, exported
	// for the causal-layer micro-bench.
	Buffered int
}

// Option configures a causal group.
type Option func(*groupConfig)

type groupConfig struct {
	pooled bool
}

// Pooled enables recycling of stamp matrices and buffer entries through
// a group-shared free list: Send draws its SENT snapshot from the pool
// and delivery returns it, so the steady state allocates nothing per
// message. It is only sound when every stamp handed to Receive is
// delivered AT MOST ONCE — a transport that can duplicate a delivery
// (two Receive calls sharing one Stamp) would recycle the matrix twice
// and corrupt later stamps. Callers must leave pooling off on such
// paths (netsim disables it when faults can duplicate frames below a
// deduplicating ARQ).
func Pooled(on bool) Option {
	return func(c *groupConfig) { c.pooled = on }
}

// Group creates n endpoints forming one causal group. deliver is invoked
// on each endpoint's behalf when a message becomes deliverable; it
// receives the destination endpoint index via closure (callers typically
// create one closure per endpoint with MakeDeliver).
func Group(n int, deliver func(dst int, payload any), opts ...Option) []*Endpoint {
	var cfg groupConfig
	for _, o := range opts {
		o(&cfg)
	}
	var pl *pool
	if cfg.pooled {
		pl = &pool{n: n}
	}
	eps := make([]*Endpoint, n)
	for i := 0; i < n; i++ {
		i := i
		eps[i] = &Endpoint{
			idx:     i,
			n:       n,
			sent:    NewMatrix(n),
			deliv:   make([]uint64, n),
			deliver: func(p any) { deliver(i, p) },
			pool:    pl,
		}
	}
	return eps
}

// Index returns the endpoint's process index within the group.
func (e *Endpoint) Index() int { return e.idx }

// Send records a send from this endpoint to process dst and returns the
// stamp to piggyback on the message. dst must be a valid process index.
func (e *Endpoint) Send(dst int) Stamp {
	if dst < 0 || dst >= e.n {
		panic(fmt.Sprintf("causal: destination %d out of range [0,%d)", dst, e.n))
	}
	var snap Matrix
	if e.pool != nil {
		snap = e.pool.getMatrix()
		snap.CopyFrom(e.sent)
	} else {
		snap = e.sent.Clone()
	}
	st := Stamp{From: e.idx, Sent: snap}
	e.sent[e.idx][dst]++
	return st
}

// Receive hands an arrived message to the endpoint. If the causal
// delivery condition holds it is delivered immediately (and buffered
// messages that become deliverable are flushed, in arrival order);
// otherwise it is buffered.
func (e *Endpoint) Receive(st Stamp, payload any) {
	var p *pending
	if e.pool != nil {
		p = e.pool.getPending()
	} else {
		p = new(pending)
	}
	p.st, p.payload, p.seq = st, payload, e.nextSeq
	e.nextSeq++
	e.buffer = append(e.buffer, p)
	if len(e.buffer) > e.Buffered {
		e.Buffered = len(e.buffer)
	}
	e.flush()
}

// deliverable reports whether the RST condition holds for p at e:
// e has delivered every message to itself the sender knew of.
func (e *Endpoint) deliverable(p *pending) bool {
	for k := 0; k < e.n; k++ {
		if e.deliv[k] < p.st.Sent[k][e.idx] {
			return false
		}
	}
	return true
}

// flush delivers buffered messages until none is deliverable. Among
// simultaneously deliverable (hence concurrent) messages, arrival order
// wins, keeping the simulation deterministic.
func (e *Endpoint) flush() {
	for {
		best := -1
		for i, p := range e.buffer {
			if !e.deliverable(p) {
				continue
			}
			if best == -1 || e.buffer[i].seq < e.buffer[best].seq {
				best = i
			}
		}
		if best == -1 {
			return
		}
		p := e.buffer[best]
		e.buffer = append(e.buffer[:best], e.buffer[best+1:]...)
		e.deliv[p.st.From]++
		e.sent.MaxInPlace(p.st.Sent)
		// Record knowledge of the just-delivered message itself: its
		// stamp was taken before the sender's own increment, so the merge
		// above does not include it. For a self-addressed message the
		// sender's Send() already bumped this very cell — incrementing
		// again would inflate sent[i][i] past what can ever be delivered
		// and wedge every later message from other senders.
		if p.st.From != e.idx {
			e.sent[p.st.From][e.idx]++
		}
		payload := p.payload
		if e.pool != nil {
			// The stamp's matrix and the buffer entry are dead once the
			// message is delivered (see Pooled for the at-most-once
			// requirement this relies on).
			e.pool.putMatrix(p.st.Sent)
			e.pool.putPending(p)
		}
		e.deliver(payload)
	}
}

// Queued returns the number of messages currently waiting in the delay
// buffer (used by tests and the E2 ablation report).
func (e *Endpoint) Queued() int { return len(e.buffer) }

// QueuedPayloads returns the buffered (undeliverable) payloads together
// with the dependency that blocks each: the sender index and how many
// more of that sender's messages must be delivered first. Diagnostic.
func (e *Endpoint) QueuedPayloads() []QueuedInfo {
	out := make([]QueuedInfo, 0, len(e.buffer))
	for _, p := range e.buffer {
		info := QueuedInfo{From: p.st.From, Payload: p.payload}
		for k := 0; k < e.n; k++ {
			if e.deliv[k] < p.st.Sent[k][e.idx] {
				info.BlockedOn = append(info.BlockedOn, k)
				info.Missing = append(info.Missing, p.st.Sent[k][e.idx]-e.deliv[k])
			}
		}
		out = append(out, info)
	}
	return out
}

// QueuedInfo describes one blocked message (see QueuedPayloads).
type QueuedInfo struct {
	From      int
	Payload   any
	BlockedOn []int
	Missing   []uint64
}
