package psim

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/sim"
)

// EventKind enumerates scripted mobile-host actions.
type EventKind uint8

const (
	// EvMigrate moves the host to Cell. Active hosts greet the new
	// station (starting a hand-off); inactive hosts are carried silently.
	EvMigrate EventKind = iota + 1
	// EvDeactivate turns the host inactive in place.
	EvDeactivate
	// EvActivate wakes the host in Cell — the cell it was carried to
	// while inactive (equal to its current cell when it did not move).
	EvActivate
	// EvRequest issues a service request to Server with Payload.
	EvRequest
	// EvDisconnect drops the host off the radio in place (E17):
	// requests it issues while disconnected journal into the offline
	// queue instead of reaching the station.
	EvDisconnect
	// EvReconnect brings the host back on the air, re-registering and
	// replaying its offline queue in issue order.
	EvReconnect
	// EvFlush is the end-of-run delivery sweep: an inactive host wakes
	// (greeting its station), an active host re-greets in place. Either
	// way the station announces the host's location to its proxy, which
	// re-forwards any undelivered result — the mechanism behind the
	// delivery-ratio-1.0 guarantee at the measurement horizon.
	EvFlush
	// EvCrash power-fails the host in place (E18): volatile protocol
	// state is lost and only the incarnation counter and offline journal
	// survive in stable store.
	EvCrash
	// EvRestart reboots a crashed host under its next incarnation; the
	// reboot registration lets lease GC scrub the dead incarnation's
	// proxy state.
	EvRestart
)

// MHEvent is one scripted action. Scripts are generated up front from
// per-host seeds, so the workload — every migration instant, every
// request identifier — is a pure function of the master seed,
// independent of the partition and of the worker count.
type MHEvent struct {
	At      time.Duration
	Kind    EventKind
	Cell    ids.MSS
	Server  ids.Server
	Payload []byte
}

// script is one host's event list and progress cursor. Ownership
// follows the host: the owning region executes events, and a
// cross-region migration hands the script over inside the transfer
// frame (the barrier's channel synchronization carries the
// happens-before edge).
type script struct {
	id     ids.MH
	events []MHEvent
	next   int
}

// AddMH creates a mobile host in the start cell with the given script.
// Call before RunUntil; events must be sorted by At.
func (pw *World) AddMH(id ids.MH, start ids.MSS, events []MHEvent) {
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			panic(fmt.Sprintf("psim: script of %v not sorted at index %d", id, i))
		}
	}
	if _, dup := pw.scripts[id]; dup {
		panic(fmt.Sprintf("psim: duplicate MH %v", id))
	}
	ridx, ok := pw.stationRegion[start]
	if !ok {
		panic(fmt.Sprintf("psim: unknown start cell %v", start))
	}
	r := pw.regions[ridx]
	r.world.AddMH(id, start)
	s := &script{id: id, events: events}
	pw.scripts[id] = s
	pw.chain(r, s)
}

// chain schedules the script's next event on the owning region's
// kernel. An event whose instant already passed (a transfer landed
// after it) runs at the current instant instead.
func (pw *World) chain(r *region, s *script) {
	if s.next >= len(s.events) {
		return
	}
	r.kernel.DeferAt(sim.Time(s.events[s.next].At), func() { pw.exec(r, s) })
}

// exec runs the script's next event in its owning region. A
// cross-region move detaches the host and parks a transfer frame; the
// script resumes in the destination region when the frame fires, one
// lookahead later — the host is radio-silent in transit, exactly like a
// host crossing cells between beacon ranges.
func (pw *World) exec(r *region, s *script) {
	ev := s.events[s.next]
	s.next++
	switch ev.Kind {
	case EvRequest:
		h := r.world.MHs[s.id]
		req := h.IssueRequest(ev.Server, ev.Payload)
		if req.Seq != 0 { // crashed hosts refuse issues (E18)
			r.issued = append(r.issued, Issued{MH: s.id, Req: req})
		}
	case EvDeactivate:
		r.world.SetActive(s.id, false)
	case EvDisconnect:
		r.world.Disconnect(s.id)
	case EvReconnect:
		r.world.Reconnect(s.id)
	case EvCrash:
		r.world.CrashMH(s.id)
	case EvRestart:
		r.world.RestartMH(s.id)
	case EvFlush:
		if r.world.IsActive(s.id) {
			r.world.Refresh(s.id)
		} else {
			r.world.SetActive(s.id, true)
		}
	case EvMigrate, EvActivate:
		if ev.Kind == EvMigrate && (r.world.IsDisconnected(s.id) || r.world.IsCrashed(s.id)) {
			// Out of coverage or powered off: the move is suppressed (the
			// serial E17/E18 drivers do the same) — in particular the host
			// must not transfer regions, which would drop its disconnected
			// or crashed state along with its incarnation counter.
			break
		}
		dst, ok := pw.stationRegion[ev.Cell]
		if !ok {
			panic(fmt.Sprintf("psim: script of %v targets unknown cell %v", s.id, ev.Cell))
		}
		if dst != r.idx {
			pw.transfer(r, s, ev.Cell, ev.Kind == EvActivate)
			return // resumes at attach, in the destination region
		}
		if ev.Kind == EvMigrate {
			r.world.Migrate(s.id, ev.Cell)
		} else {
			if r.world.Location(s.id) != ev.Cell {
				// Carried to a new cell while inactive: relocate
				// silently, then wake (the activation greet names the
				// old respMss, starting the hand-off; §2).
				r.world.Migrate(s.id, ev.Cell)
			}
			r.world.SetActive(s.id, true)
		}
	default:
		panic(fmt.Sprintf("psim: script of %v has unknown event kind %d", s.id, ev.Kind))
	}
	pw.chain(r, s)
}

// transfer hands the host to the region owning cell. The transfer takes
// exactly one lookahead of virtual time, so the frame can never land
// inside a window the destination already finished. activate marks an
// EvActivate move: the host attaches inactive and wakes on arrival.
func (pw *World) transfer(r *region, s *script, cell ids.MSS, activate bool) {
	h, active := r.world.DetachMH(s.id)
	dst := pw.stationRegion[cell]
	dr := pw.regions[dst]
	f := frame{
		arrival: r.kernel.Now() + pw.lookahead,
		src:     r.idx,
		seq:     r.nextSeq,
		dst:     dst,
		fire: func() {
			dr.world.AttachMH(h, cell, active)
			if activate && !active {
				dr.world.SetActive(s.id, true)
			}
			pw.chain(dr, s)
		},
	}
	r.nextSeq++
	r.outbox = append(r.outbox, f)
}
