// Package psim is the conservative parallel simulation engine: it
// partitions an rdpcore world by station into R regions, drives each
// region on its own sim.Kernel (own seeded RNG, own event free list),
// and synchronizes the regions in lock-step windows of width equal to
// the lookahead — the minimum wired latency between regions, in the
// style of Chandy–Misra null-message algorithms.
//
// Within a window [T, T+lookahead) every region executes its pending
// events independently: no wired frame sent inside the window can
// arrive at another region before T+lookahead, wireless traffic never
// leaves a region (an MH talks only to the station of its current
// cell), and a host migrating between regions is radio-silent for
// exactly one lookahead while its transfer frame is in flight. At the
// window barrier the coordinator gathers every cross-region frame the
// regions emitted, merges them in deterministic (arrival time, source
// region, sequence) order, and injects them into the destination
// kernels before opening the next window. Because each region's event
// order and RNG stream depend only on its own inputs — and those inputs
// are merged deterministically — a run with W worker threads is
// byte-identical to the same partition run serially (Workers=1), and a
// different worker count can never change a metric.
//
// Mobile hosts are driven by pre-generated per-host scripts (AddMH)
// rather than live callbacks, so the workload itself is independent of
// the partition: the same seed issues the same requests with the same
// identifiers no matter how many regions execute them.
package psim

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
	"repro/internal/sim"
)

// Config parameterizes a partitioned world.
type Config struct {
	// Base is the world configuration every region inherits. The global
	// station set is Base.Stations (or ids.MSS(1..NumMSS)); servers
	// likewise. Base.Seed drives the per-region kernels through SubSeed.
	Base rdpcore.Config
	// Regions is the number of partitions R.
	Regions int
	// Workers is the number of OS threads stepping regions. 0 means
	// GOMAXPROCS, 1 means serial execution on the calling goroutine —
	// the reference the determinism tests compare against. Workers never
	// affects results, only wall-clock time.
	Workers int
	// Lookahead is the conservative window width. Every cross-region
	// wired latency sample must be >= Lookahead (the region link panics
	// otherwise); the minimum wired latency of the topology is the
	// largest sound choice.
	Lookahead time.Duration
	// AssignStation maps a station to its region; nil assigns contiguous
	// blocks of the station list. Every region must receive at least one
	// station.
	AssignStation func(ids.MSS) int
	// AssignServer maps a server to its region; nil deals servers
	// round-robin.
	AssignServer func(ids.Server) int
}

// Issued records one scripted request for post-run verification.
type Issued struct {
	MH  ids.MH
	Req ids.RequestID
}

// frame is one unit of cross-region traffic — a wired message or a
// migrating host — parked at the coordinator until its arrival window.
// Frames are ordered by (arrival, src, seq): arrival for causality, the
// (src, seq) pair to break same-instant ties identically on every run.
type frame struct {
	arrival sim.Time
	src     int
	seq     uint64
	dst     int
	fire    func()
}

// region is one partition: a full rdpcore world over the region's
// stations and servers, on a private kernel.
type region struct {
	idx    int
	kernel *sim.Kernel
	world  *rdpcore.World
	link   *netsim.RegionLink
	// outbox collects the frames emitted during the current window; the
	// coordinator drains it at the barrier. Only the region's own worker
	// touches it inside a window.
	outbox  []frame
	nextSeq uint64
	issued  []Issued
}

// World is the partitioned simulation.
type World struct {
	cfg           Config
	lookahead     sim.Time
	regions       []*region
	stationRegion map[ids.MSS]int
	serverRegion  map[ids.Server]int
	pending       frameHeap
	scripts       map[ids.MH]*script
	workers       int
	crossFrames   int64
}

// netObsRelay forwards network events to a target bound after the
// region world exists: the substrates are built before the world but
// need an observer at construction time. The target is set once, while
// construction is still single-threaded.
type netObsRelay struct{ target netsim.Observer }

func (o *netObsRelay) observe(at sim.Time, layer netsim.Layer, kind netsim.EventKind, from, to ids.NodeID, m msg.Message) {
	if o.target != nil {
		o.target(at, layer, kind, from, to, m)
	}
}

// New builds a partitioned world. It panics on configurations the
// engine cannot run correctly — see the validation messages for the
// exact rules (the important one: no MH-side timers, because a host's
// timers cannot follow it across a region transfer).
func New(cfg Config) *World {
	if cfg.Regions < 1 {
		panic("psim: Regions must be >= 1")
	}
	if cfg.Lookahead <= 0 {
		panic("psim: Lookahead must be positive")
	}
	validateBase(cfg.Base, cfg.Regions)

	stations := cfg.Base.Stations
	if stations == nil {
		for i := 1; i <= cfg.Base.NumMSS; i++ {
			stations = append(stations, ids.MSS(i))
		}
	}
	servers := cfg.Base.ServerIDs
	if servers == nil {
		for i := 1; i <= cfg.Base.NumServers; i++ {
			servers = append(servers, ids.Server(i))
		}
	}
	if cfg.Regions > len(stations) {
		panic(fmt.Sprintf("psim: %d regions for %d stations", cfg.Regions, len(stations)))
	}

	pw := &World{
		cfg:           cfg,
		lookahead:     sim.Time(cfg.Lookahead),
		stationRegion: make(map[ids.MSS]int, len(stations)),
		serverRegion:  make(map[ids.Server]int, len(servers)),
		scripts:       make(map[ids.MH]*script),
	}
	regionStations := make([][]ids.MSS, cfg.Regions)
	regionServers := make([][]ids.Server, cfg.Regions)
	for i, id := range stations {
		r := i * cfg.Regions / len(stations)
		if cfg.AssignStation != nil {
			r = cfg.AssignStation(id)
		}
		if r < 0 || r >= cfg.Regions {
			panic(fmt.Sprintf("psim: station %v assigned to region %d of %d", id, r, cfg.Regions))
		}
		pw.stationRegion[id] = r
		regionStations[r] = append(regionStations[r], id)
	}
	for i, id := range servers {
		r := i % cfg.Regions
		if cfg.AssignServer != nil {
			r = cfg.AssignServer(id)
		}
		if r < 0 || r >= cfg.Regions {
			panic(fmt.Sprintf("psim: server %v assigned to region %d of %d", id, r, cfg.Regions))
		}
		pw.serverRegion[id] = r
		regionServers[r] = append(regionServers[r], id)
	}
	for idx := 0; idx < cfg.Regions; idx++ {
		if len(regionStations[idx]) == 0 {
			panic(fmt.Sprintf("psim: region %d has no stations", idx))
		}
	}

	pw.workers = cfg.Workers
	if pw.workers <= 0 {
		pw.workers = runtime.GOMAXPROCS(0)
	}
	if pw.workers > cfg.Regions {
		pw.workers = cfg.Regions
	}

	for idx := 0; idx < cfg.Regions; idx++ {
		pw.regions = append(pw.regions, pw.buildRegion(idx, regionStations[idx], regionServers[idx]))
	}
	return pw
}

// buildRegion assembles one partition: kernel, intra-region wired
// substrate, the cross-region link wrapped around it, and the region's
// rdpcore world. Construction order is fixed so each kernel's RNG
// stream is identical on every run.
func (pw *World) buildRegion(idx int, stations []ids.MSS, servers []ids.Server) *region {
	k := sim.NewKernel(SubSeed(pw.cfg.Base.Seed, int64(idx)))
	members := make([]ids.NodeID, 0, len(stations)+len(servers))
	for _, id := range stations {
		members = append(members, id.Node())
	}
	for _, id := range servers {
		members = append(members, id.Node())
	}
	r := &region{idx: idx, kernel: k}
	relay := &netObsRelay{}
	wired := netsim.NewWired(k, members, netsim.WiredConfig{
		Latency:     pw.cfg.Base.WiredLatency,
		Causal:      pw.cfg.Base.Causal,
		PairLatency: pw.cfg.Base.WiredPairLatency,
		QueueLimit:  pw.cfg.Base.WiredQueueLimit,
	}, relay.observe)
	r.link = netsim.NewRegionLink(k, netsim.RegionLinkConfig{
		Local:        wired,
		LocalMembers: members,
		Latency:      pw.cfg.Base.WiredLatency,
		PairLatency:  pw.cfg.Base.WiredPairLatency,
		Lookahead:    pw.cfg.Lookahead,
		Emit:         func(f netsim.CrossFrame) { pw.emitWired(r, f) },
	}, relay.observe)
	rcfg := pw.cfg.Base
	rcfg.Stations = stations
	// Non-nil even when the region hosts no servers: a nil ServerIDs
	// would fall back to the default 1..NumServers construction.
	rcfg.ServerIDs = append([]ids.Server{}, servers...)
	r.world = rdpcore.NewWorldWith(k, rcfg, r.link, nil)
	relay.target = r.world.NetObserver()
	return r
}

// validateBase rejects configurations the partitioned engine cannot
// honor.
func validateBase(base rdpcore.Config, regions int) {
	if base.WiredFaults != nil || base.WiredARQ.Enabled {
		panic("psim: wired faults/ARQ are not supported across regions")
	}
	if base.WiredSeq != nil || base.WirelessSeq != nil {
		panic("psim: adversarial sequencers are not supported")
	}
	if regions == 1 {
		return
	}
	// A mobile host's self-armed timers (retry, refresh, deadline, busy
	// backoff) are events on the kernel that scheduled them; after a
	// region transfer they would fire on the old region's kernel and
	// race with the host's new owner. Scripted workloads replace them.
	if base.RequestTimeout != 0 || base.GreetRefresh != 0 ||
		base.RequestDeadline != 0 || base.BusyRetryBase != 0 {
		panic("psim: MH-side timers (RequestTimeout/GreetRefresh/RequestDeadline/BusyRetryBase) must be zero with Regions > 1")
	}
	if base.Observer != nil {
		panic("psim: a shared Config.Observer would run on multiple region threads; use per-region stats instead")
	}
}

// nodeRegion maps a wired host to its owning region.
func (pw *World) nodeRegion(n ids.NodeID) int {
	switch n.Kind {
	case ids.KindMSS:
		if r, ok := pw.stationRegion[ids.MSS(n.Num)]; ok {
			return r
		}
	case ids.KindServer:
		if r, ok := pw.serverRegion[ids.Server(n.Num)]; ok {
			return r
		}
	}
	panic(fmt.Sprintf("psim: %v belongs to no region", n))
}

// emitWired parks an outbound wired frame in the source region's
// outbox. Runs on the source region's worker, inside a window.
func (pw *World) emitWired(r *region, f netsim.CrossFrame) {
	dst := pw.nodeRegion(f.To)
	dr := pw.regions[dst]
	r.outbox = append(r.outbox, frame{
		arrival: f.Arrival,
		src:     r.idx,
		seq:     r.nextSeq,
		dst:     dst,
		fire:    func() { dr.link.Deliver(f) },
	})
	r.nextSeq++
}

// RunUntil advances the whole partitioned simulation to instant d,
// window by window. Like the serial kernel's RunUntil, events stamped
// exactly d still execute, and every region's clock reads d afterwards.
func (pw *World) RunUntil(d time.Duration) {
	stepLimit := sim.Time(d) + 1
	pool := pw.startPool()
	for {
		t, ok := pw.low()
		if !ok || t >= stepLimit {
			break
		}
		end := t + pw.lookahead
		if end > stepLimit {
			end = stepLimit
		}
		pw.inject(end)
		pw.step(pool, end)
		pw.collect()
	}
	pool.stop()
	for _, r := range pw.regions {
		r.kernel.AdvanceTo(sim.Time(d))
	}
}

// low returns the earliest instant at which anything can happen: the
// minimum over region kernels' next events and parked frame arrivals.
// Starting each window there (rather than at the previous window's end)
// skips idle stretches in one hop.
func (pw *World) low() (sim.Time, bool) {
	var best sim.Time
	ok := false
	for _, r := range pw.regions {
		if at, has := r.kernel.NextEventAt(); has && (!ok || at < best) {
			best, ok = at, true
		}
	}
	if len(pw.pending) > 0 {
		if a := pw.pending[0].arrival; !ok || a < best {
			best, ok = a, true
		}
	}
	return best, ok
}

// inject moves every parked frame with arrival < end into its
// destination kernel, in (arrival, src, seq) order. It runs between
// windows, single-threaded; kernel insertion order fixes the tie-break
// among same-instant frames, making the merge deterministic.
func (pw *World) inject(end sim.Time) {
	for len(pw.pending) > 0 && pw.pending[0].arrival < end {
		f := pw.pending.pop()
		pw.regions[f.dst].kernel.DeferAt(f.arrival, f.fire)
	}
}

// step executes one window on every region, in parallel when a pool is
// running.
func (pw *World) step(p *pool, end sim.Time) {
	if p == nil {
		for _, r := range pw.regions {
			r.kernel.StepUntil(end)
		}
		return
	}
	p.run(end)
}

// collect drains every region's outbox into the pending heap, in region
// order (the frames' own (arrival, src, seq) keys make the heap order
// independent of drain order; region order keeps it reproducible
// anyway).
func (pw *World) collect() {
	for _, r := range pw.regions {
		for _, f := range r.outbox {
			pw.pending.push(f)
			pw.crossFrames++
		}
		r.outbox = r.outbox[:0]
	}
}

// pool runs the per-window region stepping on persistent worker
// goroutines. Regions are dealt round-robin; the barrier is two channel
// rounds per window (start fan-out, done fan-in), which also carry the
// happens-before edges that hand region state between the coordinator
// and the workers.
type pool struct {
	start []chan sim.Time
	done  chan struct{}
}

func (pw *World) startPool() *pool {
	if pw.workers <= 1 {
		return nil
	}
	p := &pool{done: make(chan struct{}, pw.workers)}
	for w := 0; w < pw.workers; w++ {
		var regs []*region
		for i := w; i < len(pw.regions); i += pw.workers {
			regs = append(regs, pw.regions[i])
		}
		ch := make(chan sim.Time)
		p.start = append(p.start, ch)
		go func(regs []*region, ch chan sim.Time) {
			for end := range ch {
				for _, r := range regs {
					r.kernel.StepUntil(end)
				}
				p.done <- struct{}{}
			}
		}(regs, ch)
	}
	return p
}

func (p *pool) run(end sim.Time) {
	for _, ch := range p.start {
		ch <- end
	}
	for range p.start {
		<-p.done
	}
}

func (p *pool) stop() {
	if p == nil {
		return
	}
	for _, ch := range p.start {
		close(ch)
	}
}

// frameHeap is a binary min-heap of frames ordered by
// (arrival, src, seq).
type frameHeap []frame

func frameLess(a, b frame) bool {
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

func (h *frameHeap) push(f frame) {
	*h = append(*h, f)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !frameLess(f, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = f
}

func (h *frameHeap) pop() frame {
	q := *h
	top := q[0]
	n := len(q) - 1
	f := q[n]
	q[n] = frame{}
	*h = q[:n]
	if n > 0 {
		q = q[:n]
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if r := c + 1; r < n && frameLess(q[r], q[c]) {
				c = r
			}
			if !frameLess(q[c], f) {
				break
			}
			q[i] = q[c]
			i = c
		}
		q[i] = f
	}
	return top
}

// SubSeed derives region and per-entity seeds from a master seed
// (splitmix64 over the pair): independent streams that are stable
// across runs and partitions.
func SubSeed(seed, idx int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
