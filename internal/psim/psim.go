// Package psim is the conservative parallel simulation engine: it
// partitions an rdpcore world by station into R regions, drives each
// region on its own sim.Kernel (own seeded RNG, own event free list),
// and synchronizes the regions in lock-step windows of width equal to
// the lookahead — the minimum wired latency between regions, in the
// style of Chandy–Misra null-message algorithms.
//
// Within a window [T, T+lookahead) every region executes its pending
// events independently: no wired frame sent inside the window can
// arrive at another region before T+lookahead, wireless traffic never
// leaves a region (an MH talks only to the station of its current
// cell), and a host migrating between regions is radio-silent for
// exactly one lookahead while its transfer frame is in flight. Each
// region parks the cross-region frames it emits in its own
// (arrival, seq)-ordered heap — drained by the worker that stepped it,
// at the barrier, with no coordinator-side copying — and before the
// next window opens the coordinator k-way-merges the heap tops in
// deterministic (arrival time, source region, sequence) order straight
// into the destination kernels. Because each region's event order and
// RNG stream depend only on its own inputs — and those inputs are
// merged deterministically — a run with W worker threads is
// byte-identical to the same partition run serially (Workers=1), and a
// different worker count can never change a metric. The same argument
// covers how regions are dealt to workers: the size-aware static plan
// (regions weighted by resident-host count, largest-first onto the
// lightest worker) and the optional per-window work-stealing mode both
// guarantee that exactly one worker steps each region per window, so
// neither can change a byte of output — only wall-clock time.
//
// Mobile hosts are driven by pre-generated per-host scripts (AddMH,
// or AddMHs for bulk parallel construction) rather than live
// callbacks, so the workload itself is independent of the partition:
// the same seed issues the same requests with the same identifiers no
// matter how many regions execute them.
package psim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
	"repro/internal/sim"
)

// Config parameterizes a partitioned world.
type Config struct {
	// Base is the world configuration every region inherits. The global
	// station set is Base.Stations (or ids.MSS(1..NumMSS)); servers
	// likewise. Base.Seed drives the per-region kernels through SubSeed.
	Base rdpcore.Config
	// Regions is the number of partitions R.
	Regions int
	// Workers is the number of OS threads stepping regions. 0 means
	// GOMAXPROCS, 1 means serial execution on the calling goroutine —
	// the reference the determinism tests compare against. Workers never
	// affects results, only wall-clock time.
	Workers int
	// WorkSteal switches the worker pool from the size-aware static
	// assignment to per-window work stealing: the coordinator re-sorts
	// regions by current resident-host count before each window and the
	// workers pull from the shared list through an atomic cursor, so a
	// region whose population ballooned mid-run cannot strand the static
	// plan. Exactly one worker still steps each region per window, so
	// results stay byte-identical to the serial run; only wall-clock
	// time changes.
	WorkSteal bool
	// Lookahead is the conservative window width. Every cross-region
	// wired latency sample must be >= Lookahead (the region link panics
	// otherwise); the minimum wired latency of the topology is the
	// largest sound choice.
	Lookahead time.Duration
	// AssignStation maps a station to its region; nil assigns contiguous
	// blocks of the station list. Every region must receive at least one
	// station.
	AssignStation func(ids.MSS) int
	// AssignServer maps a server to its region; nil deals servers
	// round-robin.
	AssignServer func(ids.Server) int
}

// Issued records one scripted request for post-run verification.
type Issued struct {
	MH  ids.MH
	Req ids.RequestID
}

// frame is one unit of cross-region traffic — a wired message or a
// migrating host — parked at its source region until its arrival window.
// Frames are ordered by (arrival, src, seq): arrival for causality, the
// (src, seq) pair to break same-instant ties identically on every run.
type frame struct {
	arrival sim.Time
	src     int
	seq     uint64
	dst     int
	fire    func()
}

// region is one partition: a full rdpcore world over the region's
// stations and servers, on a private kernel.
type region struct {
	idx    int
	kernel *sim.Kernel
	world  *rdpcore.World
	link   *netsim.RegionLink
	// outbox collects the frames emitted during the current window; the
	// worker that stepped the region drains it into parked at the
	// barrier. Only the region's own worker touches either inside a
	// window, so collection costs the coordinator nothing.
	outbox []frame
	// parked holds drained frames ordered by (arrival, seq) — src is
	// constant per region — until the coordinator's k-way merge injects
	// them into their destination kernels.
	parked      frameHeap
	nextSeq     uint64
	issued      []Issued
	crossFrames int64
	// stepPanic records a panic recovered during this region's window
	// step; the coordinator re-raises it after the barrier so a dying
	// region cannot deadlock the other workers.
	stepPanic any
}

// World is the partitioned simulation.
type World struct {
	cfg           Config
	lookahead     sim.Time
	regions       []*region
	stationRegion map[ids.MSS]int
	serverRegion  map[ids.Server]int
	scripts       map[ids.MH]*script
	workers       int
}

// netObsRelay forwards network events to a target bound after the
// region world exists: the substrates are built before the world but
// need an observer at construction time. The target is set once, while
// construction is still single-threaded.
type netObsRelay struct{ target netsim.Observer }

func (o *netObsRelay) observe(at sim.Time, layer netsim.Layer, kind netsim.EventKind, from, to ids.NodeID, m msg.Message) {
	if o.target != nil {
		o.target(at, layer, kind, from, to, m)
	}
}

// New builds a partitioned world; with Workers > 1 the regions are
// constructed in parallel (each region's kernel, substrates and world
// are fully independent, so construction order across regions is not
// observable). It panics on configurations the engine cannot run
// correctly — see the validation messages for the exact rules (the
// important one: no MH-side timers, because a host's timers cannot
// follow it across a region transfer).
func New(cfg Config) *World {
	if cfg.Regions < 1 {
		panic("psim: Regions must be >= 1")
	}
	if cfg.Lookahead <= 0 {
		panic("psim: Lookahead must be positive")
	}
	validateBase(cfg.Base, cfg.Regions)

	stations := cfg.Base.Stations
	if stations == nil {
		for i := 1; i <= cfg.Base.NumMSS; i++ {
			stations = append(stations, ids.MSS(i))
		}
	}
	servers := cfg.Base.ServerIDs
	if servers == nil {
		for i := 1; i <= cfg.Base.NumServers; i++ {
			servers = append(servers, ids.Server(i))
		}
	}
	if cfg.Regions > len(stations) {
		panic(fmt.Sprintf("psim: %d regions for %d stations", cfg.Regions, len(stations)))
	}

	pw := &World{
		cfg:           cfg,
		lookahead:     sim.Time(cfg.Lookahead),
		stationRegion: make(map[ids.MSS]int, len(stations)),
		serverRegion:  make(map[ids.Server]int, len(servers)),
		scripts:       make(map[ids.MH]*script),
	}
	regionStations := make([][]ids.MSS, cfg.Regions)
	regionServers := make([][]ids.Server, cfg.Regions)
	for i, id := range stations {
		r := i * cfg.Regions / len(stations)
		if cfg.AssignStation != nil {
			r = cfg.AssignStation(id)
		}
		if r < 0 || r >= cfg.Regions {
			panic(fmt.Sprintf("psim: station %v assigned to region %d of %d", id, r, cfg.Regions))
		}
		pw.stationRegion[id] = r
		regionStations[r] = append(regionStations[r], id)
	}
	for i, id := range servers {
		r := i % cfg.Regions
		if cfg.AssignServer != nil {
			r = cfg.AssignServer(id)
		}
		if r < 0 || r >= cfg.Regions {
			panic(fmt.Sprintf("psim: server %v assigned to region %d of %d", id, r, cfg.Regions))
		}
		pw.serverRegion[id] = r
		regionServers[r] = append(regionServers[r], id)
	}
	for idx := 0; idx < cfg.Regions; idx++ {
		if len(regionStations[idx]) == 0 {
			panic(fmt.Sprintf("psim: region %d has no stations", idx))
		}
	}

	pw.workers = cfg.Workers
	if pw.workers <= 0 {
		pw.workers = runtime.GOMAXPROCS(0)
	}
	if pw.workers > cfg.Regions {
		pw.workers = cfg.Regions
	}

	pw.regions = make([]*region, cfg.Regions)
	pw.parfor(cfg.Regions, func(idx int) {
		pw.regions[idx] = pw.buildRegion(idx, regionStations[idx], regionServers[idx])
	})
	return pw
}

// parfor runs fn(0..n-1) on up to pw.workers goroutines in contiguous
// chunks; with one worker it runs inline. fn must only touch state owned
// by its index — parfor provides the fork/join happens-before edges and
// nothing else.
func (pw *World) parfor(n int, fn func(i int)) {
	w := pw.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for c := 0; c < w; c++ {
		lo, hi := c*n/w, (c+1)*n/w
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// parforChunks is parfor with chunk visibility: fn is called once per
// chunk with its worker slot and index range, so callers can accumulate
// into per-chunk partials and reduce them deterministically afterwards.
func (pw *World) parforChunks(n int, fn func(chunk, lo, hi int)) int {
	w := pw.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return 1
	}
	var wg sync.WaitGroup
	for c := 0; c < w; c++ {
		lo, hi := c*n/w, (c+1)*n/w
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			fn(c, lo, hi)
		}(c, lo, hi)
	}
	wg.Wait()
	return w
}

// buildRegion assembles one partition: kernel, intra-region wired
// substrate, the cross-region link wrapped around it, and the region's
// rdpcore world. Construction order is fixed so each kernel's RNG
// stream is identical on every run.
func (pw *World) buildRegion(idx int, stations []ids.MSS, servers []ids.Server) *region {
	k := sim.NewKernel(SubSeed(pw.cfg.Base.Seed, int64(idx)))
	members := make([]ids.NodeID, 0, len(stations)+len(servers))
	for _, id := range stations {
		members = append(members, id.Node())
	}
	for _, id := range servers {
		members = append(members, id.Node())
	}
	r := &region{idx: idx, kernel: k}
	relay := &netObsRelay{}
	wired := netsim.NewWired(k, members, netsim.WiredConfig{
		Latency:     pw.cfg.Base.WiredLatency,
		Causal:      pw.cfg.Base.Causal,
		PairLatency: pw.cfg.Base.WiredPairLatency,
		QueueLimit:  pw.cfg.Base.WiredQueueLimit,
	}, relay.observe)
	r.link = netsim.NewRegionLink(k, netsim.RegionLinkConfig{
		Local:        wired,
		LocalMembers: members,
		Latency:      pw.cfg.Base.WiredLatency,
		PairLatency:  pw.cfg.Base.WiredPairLatency,
		Lookahead:    pw.cfg.Lookahead,
		Emit:         func(f netsim.CrossFrame) { pw.emitWired(r, f) },
	}, relay.observe)
	rcfg := pw.cfg.Base
	rcfg.Stations = stations
	// Non-nil even when the region hosts no servers: a nil ServerIDs
	// would fall back to the default 1..NumServers construction.
	rcfg.ServerIDs = append([]ids.Server{}, servers...)
	r.world = rdpcore.NewWorldWith(k, rcfg, r.link, nil)
	relay.target = r.world.NetObserver()
	return r
}

// validateBase rejects configurations the partitioned engine cannot
// honor.
func validateBase(base rdpcore.Config, regions int) {
	if base.WiredFaults != nil || base.WiredARQ.Enabled {
		panic("psim: wired faults/ARQ are not supported across regions")
	}
	if base.WiredSeq != nil || base.WirelessSeq != nil {
		panic("psim: adversarial sequencers are not supported")
	}
	if regions == 1 {
		return
	}
	// A mobile host's self-armed timers (retry, refresh, deadline, busy
	// backoff) are events on the kernel that scheduled them; after a
	// region transfer they would fire on the old region's kernel and
	// race with the host's new owner. Scripted workloads replace them.
	if base.RequestTimeout != 0 || base.GreetRefresh != 0 ||
		base.RequestDeadline != 0 || base.BusyRetryBase != 0 {
		panic("psim: MH-side timers (RequestTimeout/GreetRefresh/RequestDeadline/BusyRetryBase) must be zero with Regions > 1")
	}
	if base.Observer != nil {
		panic("psim: a shared Config.Observer would run on multiple region threads; use per-region stats instead")
	}
}

// nodeRegion maps a wired host to its owning region.
func (pw *World) nodeRegion(n ids.NodeID) int {
	switch n.Kind {
	case ids.KindMSS:
		if r, ok := pw.stationRegion[ids.MSS(n.Num)]; ok {
			return r
		}
	case ids.KindServer:
		if r, ok := pw.serverRegion[ids.Server(n.Num)]; ok {
			return r
		}
	}
	panic(fmt.Sprintf("psim: %v belongs to no region", n))
}

// emitWired parks an outbound wired frame in the source region's
// outbox. Runs on the source region's worker, inside a window.
func (pw *World) emitWired(r *region, f netsim.CrossFrame) {
	dst := pw.nodeRegion(f.To)
	dr := pw.regions[dst]
	r.outbox = append(r.outbox, frame{
		arrival: f.Arrival,
		src:     r.idx,
		seq:     r.nextSeq,
		dst:     dst,
		fire:    func() { dr.link.Deliver(f) },
	})
	r.nextSeq++
}

// drain moves the window's outbox into the region's parked heap — the
// per-region half of the barrier, executed by whichever worker stepped
// the region, so frame collection parallelizes with the windows
// themselves and the coordinator never copies a frame.
func (r *region) drain() {
	if len(r.outbox) == 0 {
		return
	}
	r.crossFrames += int64(len(r.outbox))
	for i := range r.outbox {
		r.parked.push(r.outbox[i])
		r.outbox[i] = frame{}
	}
	r.outbox = r.outbox[:0]
}

// RunUntil advances the whole partitioned simulation to instant d,
// window by window. Like the serial kernel's RunUntil, events stamped
// exactly d still execute, and every region's clock reads d afterwards.
// A panic inside a region (serial or parallel) propagates to the
// caller; with a pool running, the workers are shut down first so the
// barrier cannot deadlock.
func (pw *World) RunUntil(d time.Duration) {
	stepLimit := sim.Time(d) + 1
	pool := pw.startPool()
	defer pool.stop()
	var arena *sim.Arena
	if pool == nil {
		// Serial: all regions step on this goroutine in turn, so one
		// shared arena recycles every region's retired events.
		arena = sim.NewArena()
	}
	for {
		t, ok := pw.low()
		if !ok || t >= stepLimit {
			break
		}
		end := t + pw.lookahead
		if end > stepLimit {
			end = stepLimit
		}
		pw.inject(end)
		if pool == nil {
			for _, r := range pw.regions {
				stepRegion(r, end, arena)
			}
			pw.raiseRegionPanics()
		} else {
			pool.run(end)
		}
	}
	for _, r := range pw.regions {
		r.kernel.AdvanceTo(sim.Time(d))
	}
}

// stepRegion executes one region's window — kernel steps, then the
// barrier drain — with the worker's shared arena attached and any panic
// captured for deterministic re-raise after the barrier.
func stepRegion(r *region, end sim.Time, arena *sim.Arena) {
	defer func() {
		r.kernel.SetArena(nil)
		if v := recover(); v != nil {
			r.stepPanic = v
		}
	}()
	r.kernel.SetArena(arena)
	r.kernel.StepUntil(end)
	r.drain()
}

// raiseRegionPanics re-raises the first (lowest-region-index) panic
// captured during the window, wrapped with its region. Scanning in
// region order keeps the propagated panic deterministic even when
// several regions die in the same window on different workers.
func (pw *World) raiseRegionPanics() {
	for _, r := range pw.regions {
		if v := r.stepPanic; v != nil {
			r.stepPanic = nil
			panic(fmt.Sprintf("psim: region %d panicked: %v", r.idx, v))
		}
	}
}

// low returns the earliest instant at which anything can happen: the
// minimum over region kernels' next events and parked frame arrivals.
// Starting each window there (rather than at the previous window's end)
// skips idle stretches in one hop.
func (pw *World) low() (sim.Time, bool) {
	var best sim.Time
	ok := false
	for _, r := range pw.regions {
		if at, has := r.kernel.NextEventAt(); has && (!ok || at < best) {
			best, ok = at, true
		}
		if len(r.parked) > 0 {
			if a := r.parked[0].arrival; !ok || a < best {
				best, ok = a, true
			}
		}
	}
	return best, ok
}

// inject k-way-merges the regions' parked heaps, moving every frame
// with arrival < end into its destination kernel in (arrival, src, seq)
// order. It runs between windows, single-threaded; kernel insertion
// order fixes the tie-break among same-instant frames, making the merge
// deterministic. Each heap's top is its region's minimum, so comparing
// tops yields the same global order the old coordinator-side heap did —
// without ever copying a frame into a coordinator buffer.
func (pw *World) inject(end sim.Time) {
	for {
		best := -1
		for i, r := range pw.regions {
			if len(r.parked) == 0 || r.parked[0].arrival >= end {
				continue
			}
			if best < 0 || frameLess(r.parked[0], pw.regions[best].parked[0]) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		f := pw.regions[best].parked.pop()
		pw.regions[f.dst].kernel.DeferAt(f.arrival, f.fire)
	}
}

// pool runs the per-window region stepping on persistent worker
// goroutines. Regions are dealt by the size-aware static plan (or
// pulled through the work-stealing cursor); the barrier is two channel
// rounds per window (start fan-out, done fan-in), which also carry the
// happens-before edges that hand region state between the coordinator
// and the workers. Each worker owns a sim.Arena, so every region it
// steps recycles events from one shared pool.
type pool struct {
	pw    *World
	start []chan sim.Time
	done  chan struct{}
	// plan is the static assignment (nil under WorkSteal): plan[w] lists
	// the region indices worker w steps each window.
	plan [][]int
	// order and next implement work stealing: order is re-sorted by
	// current region weight before each window and workers pull indices
	// through the atomic cursor.
	order []int
	next  atomic.Int64
}

// regionWeights returns each region's current step weight: one unit of
// baseline station load plus one per resident mobile host. Reading the
// region worlds is only safe between windows (or before the run).
func (pw *World) regionWeights() []int64 {
	weights := make([]int64, len(pw.regions))
	for i, r := range pw.regions {
		weights[i] = 1 + int64(len(r.world.MHs))
	}
	return weights
}

// balancePlan deals regions to workers with the longest-processing-time
// heuristic: regions sorted by descending weight (ties broken by lower
// index), each assigned to the currently lightest worker (ties broken
// by lower worker index). A region holding most of the hosts therefore
// gets a worker to itself while the small regions share the rest —
// round-robin dealing would chain it to whatever shares its stripe.
func balancePlan(weights []int64, workers int) [][]int {
	order := weightOrder(weights)
	plan := make([][]int, workers)
	load := make([]int64, workers)
	for _, ri := range order {
		w := 0
		for i := 1; i < workers; i++ {
			if load[i] < load[w] {
				w = i
			}
		}
		plan[w] = append(plan[w], ri)
		load[w] += weights[ri]
	}
	return plan
}

// weightOrder returns region indices sorted by (weight desc, index asc).
func weightOrder(weights []int64) []int {
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		wa, wb := weights[order[a]], weights[order[b]]
		if wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})
	return order
}

// WorkerPlan returns the size-aware static assignment the pool would
// start with right now: plan[w] lists the region indices dealt to
// worker w, loads[w] the summed weights of those regions. It exists for
// the load-balance regression tests; the assignment never affects
// results, only wall-clock time.
func (pw *World) WorkerPlan() (plan [][]int, loads []int64) {
	weights := pw.regionWeights()
	plan = balancePlan(weights, pw.workers)
	loads = make([]int64, len(plan))
	for w, regs := range plan {
		for _, ri := range regs {
			loads[w] += weights[ri]
		}
	}
	return plan, loads
}

// RegionWeights returns each region's current step weight (1 + resident
// hosts), in region order. Call between RunUntil slices or before/after
// a run.
func (pw *World) RegionWeights() []int64 { return pw.regionWeights() }

func (pw *World) startPool() *pool {
	if pw.workers <= 1 {
		return nil
	}
	p := &pool{pw: pw, done: make(chan struct{}, pw.workers)}
	if pw.cfg.WorkSteal {
		p.order = make([]int, len(pw.regions))
	} else {
		p.plan = balancePlan(pw.regionWeights(), pw.workers)
	}
	for w := 0; w < pw.workers; w++ {
		ch := make(chan sim.Time)
		p.start = append(p.start, ch)
		go p.worker(w, ch)
	}
	return p
}

// worker steps its regions every window until the start channel closes.
// The arena lives as long as the worker: every region it steps — static
// plan or stolen — recycles retired events through it.
func (p *pool) worker(w int, ch chan sim.Time) {
	arena := sim.NewArena()
	for end := range ch {
		if p.plan != nil {
			for _, ri := range p.plan[w] {
				stepRegion(p.pw.regions[ri], end, arena)
			}
		} else {
			for {
				i := p.next.Add(1) - 1
				if i >= int64(len(p.order)) {
					break
				}
				stepRegion(p.pw.regions[p.order[i]], end, arena)
			}
		}
		p.done <- struct{}{}
	}
}

func (p *pool) run(end sim.Time) {
	if p.order != nil {
		// Work stealing: heaviest regions first, so a giant region starts
		// on some worker immediately while the tail packs around it.
		copy(p.order, weightOrder(p.pw.regionWeights()))
		p.next.Store(0)
	}
	for _, ch := range p.start {
		ch <- end
	}
	for range p.start {
		<-p.done
	}
	p.pw.raiseRegionPanics()
}

func (p *pool) stop() {
	if p == nil {
		return
	}
	for _, ch := range p.start {
		close(ch)
	}
}

// frameHeap is a binary min-heap of frames ordered by
// (arrival, src, seq).
type frameHeap []frame

func frameLess(a, b frame) bool {
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

func (h *frameHeap) push(f frame) {
	*h = append(*h, f)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !frameLess(f, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = f
}

func (h *frameHeap) pop() frame {
	q := *h
	top := q[0]
	n := len(q) - 1
	f := q[n]
	q[n] = frame{}
	*h = q[:n]
	if n > 0 {
		q = q[:n]
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if r := c + 1; r < n && frameLess(q[r], q[c]) {
				c = r
			}
			if !frameLess(q[c], f) {
				break
			}
			q[i] = q[c]
			i = c
		}
		q[i] = f
	}
	h.maybeShrink(n)
	return top
}

// frameShrinkMinCap is the heap capacity below which pop never shrinks
// the backing array: steady-state parking stays allocation-free, and
// only a genuine cross-traffic burst trips the release path.
const frameShrinkMinCap = 1024

// maybeShrink halves the backing array once the heap drains below a
// quarter of its capacity, releasing a burst's frames (and the closures
// they pin) instead of holding the high-water mark for the rest of the
// run. Halving per shrink keeps the cost amortized O(1) per pop —
// the same policy as the kernel's event queue.
func (h *frameHeap) maybeShrink(n int) {
	c := cap(*h)
	if c < frameShrinkMinCap || n >= c/4 {
		return
	}
	nq := make(frameHeap, n, c/2)
	copy(nq, *h)
	*h = nq
}

// SubSeed derives region and per-entity seeds from a master seed
// (splitmix64 over the pair): independent streams that are stable
// across runs and partitions.
func SubSeed(seed, idx int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
