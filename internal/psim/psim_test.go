// Property tests for the conservative parallel engine. The central
// claims under test:
//
//  1. Determinism: for a FIXED partition (any region assignment, any
//     seed), a run with many worker threads is exactly equal to the
//     same run executed serially — every counter, every latency
//     histogram, every kernel step count. This is the tentpole's
//     "parallel run is metric-identical to the serial run for the same
//     seed and partition" guarantee, exercised on E1-shaped and
//     E12-shaped (ring + proxy migration) worlds with randomly drawn
//     partitions.
//
//  2. Partition invariance of the headline: with the constant-latency
//     topology (E13's), issued/delivered/duplicates are identical
//     across DIFFERENT partitions of the same seed, the delivery ratio
//     is exactly 1, and no request is left undelivered.
package psim_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/proxymig"
	"repro/internal/psim"
	"repro/internal/rdpcore"
	"repro/internal/workload"
	"repro/internal/wtp"
)

// e1Base mirrors the experiments package's standard operating point:
// 8 stations, 2 servers, uniform wired/wireless latencies, exponential
// server processing. Min wired latency 2ms = lookahead.
func e1Base(seed int64) rdpcore.Config {
	cfg := rdpcore.DefaultConfig()
	cfg.Seed = seed
	cfg.NumMSS = 8
	cfg.NumServers = 2
	cfg.WiredLatency = netsim.Uniform{Lo: 2 * time.Millisecond, Hi: 8 * time.Millisecond}
	cfg.WirelessLatency = netsim.Uniform{Lo: 10 * time.Millisecond, Hi: 30 * time.Millisecond}
	cfg.ServerProc = netsim.Exponential{MeanDelay: 150 * time.Millisecond, Floor: 10 * time.Millisecond}
	return cfg
}

// e12Base mirrors the E12 ring world: 12 stations on a metropolitan
// ring (2ms + 2ms/hop pair latency, 5ms server links), 10ms wireless,
// slow servers, hop-triggered proxy migration. Min cross-region wired
// latency is 4ms (adjacent stations); lookahead 2ms is safely below.
func e12Base(seed int64) rdpcore.Config {
	const stations = 12
	cfg := rdpcore.DefaultConfig()
	cfg.Seed = seed
	cfg.NumMSS = stations
	cfg.NumServers = 2
	cfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
	cfg.WiredPairLatency = netsim.RingLatency(stations, 2*time.Millisecond, 2*time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
	cfg.ServerProc = netsim.Exponential{MeanDelay: 400 * time.Millisecond, Floor: 50 * time.Millisecond}
	cfg.Migration = proxymig.Policy{HopThreshold: 1, MinInterval: 250 * time.Millisecond}
	cfg.StationDistance = proxymig.RingDistance(stations)
	return cfg
}

func cellList(n int) []ids.MSS {
	cells := make([]ids.MSS, n)
	for i := range cells {
		cells[i] = ids.MSS(i + 1)
	}
	return cells
}

func serverList(n int) []ids.Server {
	servers := make([]ids.Server, n)
	for i := range servers {
		servers[i] = ids.Server(i + 1)
	}
	return servers
}

// randomAssignment draws a surjective station->region map: the first
// station of each region is pinned so no region is empty, the rest are
// uniform.
func randomAssignment(rng *rand.Rand, stations, regions int) map[ids.MSS]int {
	assign := make(map[ids.MSS]int, stations)
	perm := rng.Perm(stations)
	for r := 0; r < regions; r++ {
		assign[ids.MSS(perm[r]+1)] = r
	}
	for _, i := range perm[regions:] {
		assign[ids.MSS(i+1)] = rng.Intn(regions)
	}
	return assign
}

// build constructs a partitioned world with a scripted random workload.
func build(t *testing.T, base rdpcore.Config, regions, workers, mhs int,
	horizon time.Duration, assign map[ids.MSS]int, mob workload.CellPicker) *psim.World {
	t.Helper()
	cfg := psim.Config{
		Base:      base,
		Regions:   regions,
		Workers:   workers,
		Lookahead: 2 * time.Millisecond,
	}
	if assign != nil {
		cfg.AssignStation = func(id ids.MSS) int { return assign[id] }
	}
	pw := psim.New(cfg)
	cells := cellList(base.NumMSS)
	scfg := psim.ScriptConfig{
		Mobility: workload.Mobility{
			Picker:            mob,
			Residence:         netsim.Exponential{MeanDelay: 800 * time.Millisecond, Floor: 100 * time.Millisecond},
			InactiveProb:      0.25,
			InactiveDur:       netsim.Exponential{MeanDelay: 600 * time.Millisecond, Floor: 100 * time.Millisecond},
			MoveWhileInactive: 0.4,
		},
		Requests: workload.Requests{
			Interarrival: netsim.Exponential{MeanDelay: 900 * time.Millisecond, Floor: 50 * time.Millisecond},
			Servers:      serverList(base.NumServers),
			PayloadBytes: 32,
		},
		Horizon: horizon,
	}
	for i := 1; i <= mhs; i++ {
		id := ids.MH(i)
		start, events := psim.BuildScript(base.Seed, id, cells, scfg)
		pw.AddMH(id, start, events)
	}
	return pw
}

// assertRunsEqual compares two finished runs of the same partition
// counter by counter, region by region.
func assertRunsEqual(t *testing.T, serial, parallel *psim.World, label string) {
	t.Helper()
	ss, ps := serial.Summary(), parallel.Summary()
	if ss != ps {
		t.Fatalf("%s: summaries differ\nserial:   %+v\nparallel: %+v", label, ss, ps)
	}
	sr, pr := serial.RegionStats(), parallel.RegionStats()
	for i := range sr {
		a, b := sr[i], pr[i]
		pairs := []struct {
			name string
			s, p int64
		}{
			{"RequestsIssued", a.RequestsIssued.Value(), b.RequestsIssued.Value()},
			{"ResultsDelivered", a.ResultsDelivered.Value(), b.ResultsDelivered.Value()},
			{"DuplicateDeliveries", a.DuplicateDeliveries.Value(), b.DuplicateDeliveries.Value()},
			{"Retransmissions", a.Retransmissions.Value(), b.Retransmissions.Value()},
			{"Handoffs", a.Handoffs.Value(), b.Handoffs.Value()},
			{"UpdateCurrLocs", a.UpdateCurrLocs.Value(), b.UpdateCurrLocs.Value()},
			{"AckForwards", a.AckForwards.Value(), b.AckForwards.Value()},
			{"WirelessDrops", a.WirelessDrops.Value(), b.WirelessDrops.Value()},
			{"MigCompleted", a.MigCompleted.Value(), b.MigCompleted.Value()},
			{"PrefRedirects", a.PrefRedirects.Value(), b.PrefRedirects.Value()},
			{"ForwardHops", a.ForwardHops.Value(), b.ForwardHops.Value()},
			{"WTPRetransmits", a.WTPRetransmits.Value(), b.WTPRetransmits.Value()},
			{"WTPFrames", a.WTPFrames.Value(), b.WTPFrames.Value()},
			{"WTPFrameMsgs", a.WTPFrameMsgs.Value(), b.WTPFrameMsgs.Value()},
			{"Violations", a.Violations.Value(), b.Violations.Value()},
		}
		for _, p := range pairs {
			if p.s != p.p {
				t.Errorf("%s: region %d %s: serial=%d parallel=%d", label, i, p.name, p.s, p.p)
			}
		}
		if am, bm := a.ResultLatency.Mean(), b.ResultLatency.Mean(); am != bm {
			t.Errorf("%s: region %d ResultLatency mean: serial=%v parallel=%v", label, i, am, bm)
		}
		if am, bm := a.HandoffLatency.Mean(), b.HandoffLatency.Mean(); am != bm {
			t.Errorf("%s: region %d HandoffLatency mean: serial=%v parallel=%v", label, i, am, bm)
		}
	}
	si, pi := serial.IssuedRequests(), parallel.IssuedRequests()
	for i := range si {
		if len(si[i]) != len(pi[i]) {
			t.Errorf("%s: region %d issued %d vs %d requests", label, i, len(si[i]), len(pi[i]))
			continue
		}
		for j := range si[i] {
			if si[i][j] != pi[i][j] {
				t.Errorf("%s: region %d request %d: %v vs %v", label, i, j, si[i][j], pi[i][j])
				break
			}
		}
	}
}

// TestSerialMatchesParallelE1 draws random partitions and seeds of the
// E1-shaped world and requires exact serial/parallel equality.
func TestSerialMatchesParallelE1(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const horizon = 6 * time.Second
	for trial := 0; trial < 3; trial++ {
		seed := int64(100 + rng.Intn(1000))
		regions := 2 + rng.Intn(3)
		base := e1Base(seed)
		assign := randomAssignment(rng, base.NumMSS, regions)
		mob := workload.UniformCells{Cells: cellList(base.NumMSS)}

		serial := build(t, base, regions, 1, 24, horizon, assign, mob)
		serial.RunUntil(horizon + horizon/2)
		parallel := build(t, base, regions, 4, 24, horizon, assign, mob)
		parallel.RunUntil(horizon + horizon/2)

		assertRunsEqual(t, serial, parallel, "e1")
		if v := serial.Summary().Violations; v != 0 {
			t.Fatalf("trial %d: %d protocol violations", trial, v)
		}
	}
}

// TestSerialMatchesParallelE12 does the same on the ring world with
// proxy migration enabled (the heaviest cross-station protocol traffic
// in the repo: hand-offs, migration handshakes, pref redirects).
func TestSerialMatchesParallelE12(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const horizon = 5 * time.Second
	for trial := 0; trial < 2; trial++ {
		seed := int64(500 + rng.Intn(1000))
		regions := 2 + rng.Intn(2)
		base := e12Base(seed)
		assign := randomAssignment(rng, base.NumMSS, regions)
		mob := workload.RingWalk{Cells: cellList(base.NumMSS)}

		serial := build(t, base, regions, 1, 18, horizon, assign, mob)
		serial.RunUntil(horizon + horizon/2)
		parallel := build(t, base, regions, 4, 18, horizon, assign, mob)
		parallel.RunUntil(horizon + horizon/2)

		assertRunsEqual(t, serial, parallel, "e12")
	}
}

// injectCrash splices an EvCrash (and, unless permanent, an EvRestart)
// into a sorted script, keeping it sorted.
func injectCrash(events []psim.MHEvent, crashAt, restartAt time.Duration) []psim.MHEvent {
	extra := []psim.MHEvent{{At: crashAt, Kind: psim.EvCrash}}
	if restartAt > 0 {
		extra = append(extra, psim.MHEvent{At: restartAt, Kind: psim.EvRestart})
	}
	out := make([]psim.MHEvent, 0, len(events)+len(extra))
	for _, ev := range events {
		for len(extra) > 0 && extra[0].At <= ev.At {
			out = append(out, extra[0])
			extra = extra[1:]
		}
		out = append(out, ev)
	}
	return append(out, extra...)
}

// TestSerialMatchesParallelMHCrash injects MH crash/restart events
// (E18) into the E1-shaped world with lease GC enabled and requires
// exact serial/parallel equality — incarnation counters, crash flags,
// and offline journals must survive region transfers bit-for-bit, and
// the lease heartbeat/reclaim machinery must not introduce any
// scheduling nondeterminism. One victim never restarts, so permanent
// orphan reclamation is exercised too.
func TestSerialMatchesParallelMHCrash(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const horizon = 6 * time.Second
	const mhs = 24
	buildCrash := func(workers int, seed int64, assign map[ids.MSS]int) *psim.World {
		base := e1Base(seed)
		base.LeaseTTL = time.Second
		pw := psim.New(psim.Config{
			Base:          base,
			Regions:       3,
			Workers:       workers,
			Lookahead:     2 * time.Millisecond,
			AssignStation: func(id ids.MSS) int { return assign[id] },
		})
		cells := cellList(base.NumMSS)
		scfg := psim.ScriptConfig{
			Mobility: workload.Mobility{
				Picker:            workload.UniformCells{Cells: cells},
				Residence:         netsim.Exponential{MeanDelay: 800 * time.Millisecond, Floor: 100 * time.Millisecond},
				InactiveProb:      0.25,
				InactiveDur:       netsim.Exponential{MeanDelay: 600 * time.Millisecond, Floor: 100 * time.Millisecond},
				MoveWhileInactive: 0.4,
			},
			Requests: workload.Requests{
				Interarrival: netsim.Exponential{MeanDelay: 900 * time.Millisecond, Floor: 50 * time.Millisecond},
				Servers:      serverList(base.NumServers),
				PayloadBytes: 32,
			},
			Horizon: horizon,
		}
		lastVictim := 0
		for i := 1; i <= mhs; i += 4 {
			lastVictim = i
		}
		for i := 1; i <= mhs; i++ {
			id := ids.MH(i)
			start, events := psim.BuildScript(base.Seed, id, cells, scfg)
			if i%4 == 1 {
				restartAt := 3500 * time.Millisecond
				if i == lastVictim {
					restartAt = 0 // permanent casualty: reclaimed by lease expiry
				}
				events = injectCrash(events, 2500*time.Millisecond, restartAt)
			}
			pw.AddMH(id, start, events)
		}
		return pw
	}
	for trial := 0; trial < 2; trial++ {
		seed := int64(700 + rng.Intn(1000))
		assign := randomAssignment(rng, 8, 3)
		serial := buildCrash(1, seed, assign)
		serial.RunUntil(horizon + horizon/2)
		parallel := buildCrash(4, seed, assign)
		parallel.RunUntil(horizon + horizon/2)
		assertRunsEqual(t, serial, parallel, "mhcrash")
		if v := serial.Summary().Violations; v != 0 {
			t.Fatalf("trial %d: %d protocol violations", trial, v)
		}
		// The run must actually exercise the E18 machinery on both
		// engines, or the equality above proves nothing.
		for name, w := range map[string]*psim.World{"serial": serial, "parallel": parallel} {
			var crashes, restarts, beats int64
			for _, s := range w.RegionStats() {
				crashes += s.MHCrashes.Value()
				restarts += s.MHRestarts.Value()
				beats += s.LeaseHeartbeats.Value()
			}
			if crashes != 6 || restarts != 5 {
				t.Errorf("trial %d %s: %d crashes / %d restarts, want 6/5", trial, name, crashes, restarts)
			}
			if beats == 0 {
				t.Errorf("trial %d %s: lease heartbeats never ran", trial, name)
			}
		}
	}
}

// TestSerialMatchesParallelWTP turns on the E15 windowed wireless
// transport with a 10% lossy radio in the E1-shaped world and requires
// exact serial/parallel equality: RTO timers, fast-retransmit triggers,
// cwnd evolution and coalescing all schedule through the region kernel,
// so the window machinery must stay a pure function of seed and
// partition even while MHs carry their downlink state across region
// transfers.
func TestSerialMatchesParallelWTP(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const horizon = 6 * time.Second
	for trial := 0; trial < 2; trial++ {
		seed := int64(300 + rng.Intn(1000))
		regions := 2 + rng.Intn(3)
		base := e1Base(seed)
		base.WirelessWTP = wtp.Config{Enabled: true}
		base.WirelessLoss = 0.10
		assign := randomAssignment(rng, base.NumMSS, regions)
		mob := workload.UniformCells{Cells: cellList(base.NumMSS)}

		serial := build(t, base, regions, 1, 24, horizon, assign, mob)
		serial.RunUntil(horizon + horizon/2)
		parallel := build(t, base, regions, 4, 24, horizon, assign, mob)
		parallel.RunUntil(horizon + horizon/2)

		assertRunsEqual(t, serial, parallel, "wtp")
		// The equality proves nothing unless the transport engaged and the
		// lossy radio actually forced retransmissions on both engines.
		for name, w := range map[string]*psim.World{"serial": serial, "parallel": parallel} {
			var frames, retrans int64
			for _, s := range w.RegionStats() {
				frames += s.WTPFrames.Value()
				retrans += s.WTPRetransmits.Value()
			}
			if frames == 0 {
				t.Errorf("trial %d %s: WTPFrames = 0; windowed transport never engaged", trial, name)
			}
			if retrans == 0 {
				t.Errorf("trial %d %s: WTPRetransmits = 0; lossy radio never exercised the window", trial, name)
			}
		}
	}
}

// TestHeadlineIsPartitionInvariant runs the constant-latency topology
// under three different partitions of the same seed: the headline
// metrics must agree exactly, the ratio must be exactly 1, and no
// duplicates or stragglers may exist.
func TestHeadlineIsPartitionInvariant(t *testing.T) {
	const horizon = 5 * time.Second
	base := func(seed int64) rdpcore.Config {
		cfg := rdpcore.DefaultConfig()
		cfg.Seed = seed
		cfg.NumMSS = 8
		cfg.NumServers = 2
		cfg.WiredLatency = netsim.Constant(2 * time.Millisecond)
		cfg.WirelessLatency = netsim.Constant(20 * time.Millisecond)
		cfg.ServerProc = netsim.Exponential{MeanDelay: 120 * time.Millisecond, Floor: 10 * time.Millisecond}
		return cfg
	}
	rng := rand.New(rand.NewSource(3))
	var ref psim.Summary
	for i, regions := range []int{1, 2, 4} {
		b := base(11)
		var assign map[ids.MSS]int
		if regions > 1 {
			assign = randomAssignment(rng, b.NumMSS, regions)
		}
		pw := build(t, b, regions, 0, 30, horizon, assign, workload.RingWalk{Cells: cellList(b.NumMSS)})
		pw.RunUntil(horizon + horizon/2)
		s := pw.Summary()
		if s.Ratio != 1.0 || s.Duplicates != 0 {
			t.Fatalf("regions=%d: ratio=%v duplicates=%d, want 1.0 and 0", regions, s.Ratio, s.Duplicates)
		}
		if missing := pw.MissingResults(); len(missing) != 0 {
			t.Fatalf("regions=%d: %d undelivered requests: %v", regions, len(missing), missing[0])
		}
		if s.Violations != 0 {
			t.Fatalf("regions=%d: %d protocol violations", regions, s.Violations)
		}
		if i == 0 {
			ref = s
			continue
		}
		if s.Issued != ref.Issued || s.Delivered != ref.Delivered {
			t.Fatalf("regions=%d: headline (%d/%d) != 1-region headline (%d/%d)",
				regions, s.Issued, s.Delivered, ref.Issued, ref.Delivered)
		}
	}
}

// TestRunUntilResumes verifies the window loop can be driven in slices
// (frames parked past one call's limit must survive to the next).
func TestRunUntilResumes(t *testing.T) {
	b := e1Base(5)
	b.WiredLatency = netsim.Constant(2 * time.Millisecond)
	b.WirelessLatency = netsim.Constant(20 * time.Millisecond)
	const horizon = 3 * time.Second
	whole := build(t, b, 2, 1, 10, horizon, nil, workload.RingWalk{Cells: cellList(b.NumMSS)})
	whole.RunUntil(horizon + horizon/2)
	sliced := build(t, b, 2, 1, 10, horizon, nil, workload.RingWalk{Cells: cellList(b.NumMSS)})
	for _, frac := range []time.Duration{horizon / 3, horizon, horizon + horizon/2} {
		sliced.RunUntil(frac)
	}
	assertRunsEqual(t, whole, sliced, "sliced")
}

func TestConfigValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("mh timers", func() {
		b := e1Base(1)
		b.RequestTimeout = time.Second
		psim.New(psim.Config{Base: b, Regions: 2, Lookahead: 2 * time.Millisecond})
	})
	mustPanic("zero lookahead", func() {
		psim.New(psim.Config{Base: e1Base(1), Regions: 2})
	})
	mustPanic("more regions than stations", func() {
		psim.New(psim.Config{Base: e1Base(1), Regions: 9, Lookahead: 2 * time.Millisecond})
	})
	mustPanic("unsorted script", func() {
		pw := psim.New(psim.Config{Base: e1Base(1), Regions: 2, Lookahead: 2 * time.Millisecond})
		pw.AddMH(1, 1, []psim.MHEvent{
			{At: time.Second, Kind: psim.EvDeactivate},
			{At: time.Millisecond, Kind: psim.EvFlush},
		})
	})
}
