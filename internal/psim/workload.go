package psim

import (
	"time"

	"repro/internal/ids"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ScriptConfig parameterizes BuildScript.
type ScriptConfig struct {
	// Mobility and Requests are the workload shapes (itinerary and
	// request arrivals), both generated over [0, Horizon).
	Mobility workload.Mobility
	Requests workload.Requests
	Horizon  time.Duration
	// FlushAt is the instant of the end-of-run delivery sweep (EvFlush);
	// zero defaults to Horizon + 500ms. It must leave enough drain time
	// before the run's deadline for the re-forwards it triggers.
	FlushAt time.Duration
}

// BuildScript generates one host's full life — start cell, itinerary,
// request arrivals, final flush — from the master seed and the host
// identifier alone. Each host draws from its own SubSeed stream, so the
// script is independent of every other host, of the partition, and of
// the worker count: the foundation of the engine's partition-invariant
// headline metrics.
func BuildScript(seed int64, id ids.MH, cells []ids.MSS, cfg ScriptConfig) (start ids.MSS, events []MHEvent) {
	rng := sim.NewRNG(SubSeed(seed, int64(id)))
	start = cells[rng.Intn(len(cells))]
	itin := workload.Itinerary(rng, cfg.Mobility, start, cfg.Horizon)
	reqs := workload.Schedule(rng, cfg.Requests, cfg.Horizon)

	events = make([]MHEvent, 0, len(itin)+len(reqs)+1)
	i, j := 0, 0
	for i < len(itin) || j < len(reqs) {
		// Stable merge, itinerary first on ties: a migration and a
		// request at the same instant behave like the serial drivers,
		// which schedule mobility before traffic.
		if j >= len(reqs) || (i < len(itin) && itin[i].At <= reqs[j].At) {
			ev := itin[i]
			i++
			var kind EventKind
			switch ev.Kind {
			case workload.EvMigrate:
				kind = EvMigrate
			case workload.EvDeactivate:
				kind = EvDeactivate
			case workload.EvActivate:
				kind = EvActivate
			}
			events = append(events, MHEvent{At: ev.At, Kind: kind, Cell: ev.Cell})
			continue
		}
		a := reqs[j]
		j++
		events = append(events, MHEvent{At: a.At, Kind: EvRequest, Server: a.Server, Payload: a.Payload})
	}
	flushAt := cfg.FlushAt
	if flushAt == 0 {
		flushAt = cfg.Horizon + 500*time.Millisecond
	}
	events = append(events, MHEvent{At: flushAt, Kind: EvFlush})
	return start, events
}
