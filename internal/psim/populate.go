package psim

import (
	"fmt"

	"repro/internal/ids"
)

// AddMHs bulk-creates n mobile hosts from a generator. gen(i) returns
// host i's identity, start cell and script; it must be a pure function
// of i (the bulk path calls it from multiple goroutines, in no
// particular order). The result is byte-identical to calling AddMH in a
// loop for i = 0..n-1: generation is embarrassingly parallel, the
// shared index fills serially, and each region attaches its hosts in
// ascending i — the same per-kernel registration order the serial loop
// produces, which is what pins the kernel sequence numbers and with
// them the whole run.
//
// Building a million-host world was the dominant serial cost of the
// large E14 tiers; script generation (per-host RNG streams) and
// per-region attachment both scale with Workers.
func (pw *World) AddMHs(n int, gen func(i int) (ids.MH, ids.MSS, []MHEvent)) {
	type pending struct {
		id     ids.MH
		start  ids.MSS
		events []MHEvent
	}
	hosts := make([]pending, n)

	// Phase 1 — parallel: generate and validate every script. Each index
	// writes only its own slot.
	pw.parfor(n, func(i int) {
		id, start, events := gen(i)
		for j := 1; j < len(events); j++ {
			if events[j].At < events[j-1].At {
				panic(fmt.Sprintf("psim: script of %v not sorted at index %d", id, j))
			}
		}
		hosts[i] = pending{id: id, start: start, events: events}
	})

	// Phase 2 — serial: dedup against the shared script index, record
	// the scripts, and group hosts by owning region in ascending i.
	perRegion := make([][]int, len(pw.regions))
	for i := range hosts {
		h := &hosts[i]
		if _, dup := pw.scripts[h.id]; dup {
			panic(fmt.Sprintf("psim: duplicate MH %v", h.id))
		}
		ridx, ok := pw.stationRegion[h.start]
		if !ok {
			panic(fmt.Sprintf("psim: unknown start cell %v", h.start))
		}
		pw.scripts[h.id] = &script{id: h.id, events: h.events}
		perRegion[ridx] = append(perRegion[ridx], i)
	}

	// Phase 3 — parallel over regions: attach each region's hosts in
	// ascending i. Regions are fully independent; within a region the
	// ascending order reproduces the serial loop's kernel registration
	// order exactly.
	pw.parfor(len(pw.regions), func(ridx int) {
		r := pw.regions[ridx]
		for _, i := range perRegion[ridx] {
			h := &hosts[i]
			r.world.AddMH(h.id, h.start)
			pw.chain(r, pw.scripts[h.id])
		}
	})
}
