package psim

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/sim"
)

// TestFrameHeapPopOrder is the ordering property: whatever order frames
// are pushed in — including duplicate keys and adversarial permutations
// — pop returns them exactly sorted by (arrival, src, seq).
func TestFrameHeapPopOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		frames := make([]frame, n)
		for i := range frames {
			frames[i] = frame{
				// Small ranges force key collisions so the src and seq
				// tie-breaks are actually exercised.
				arrival: sim.Time(rng.Intn(8)),
				src:     rng.Intn(4),
				seq:     uint64(rng.Intn(6)),
			}
		}
		want := append([]frame(nil), frames...)
		sort.SliceStable(want, func(a, b int) bool { return frameLess(want[a], want[b]) })

		var h frameHeap
		for _, i := range rng.Perm(n) {
			h.push(frames[i])
		}
		for i := 0; i < n; i++ {
			got := h.pop()
			// Equal keys are interchangeable; compare keys, not identity.
			if got.arrival != want[i].arrival || got.src != want[i].src || got.seq != want[i].seq {
				t.Fatalf("trial %d: pop %d = (%d,%d,%d), want (%d,%d,%d)", trial, i,
					got.arrival, got.src, got.seq, want[i].arrival, want[i].src, want[i].seq)
			}
			if i > 0 && frameLess(got, want[i-1]) {
				t.Fatalf("trial %d: pop %d went backwards", trial, i)
			}
		}
		if len(h) != 0 {
			t.Fatalf("trial %d: %d frames left after draining", trial, len(h))
		}
	}
}

// TestFrameHeapShrink exercises the grow/shrink thresholds with random
// push/pop bursts: the backing array must halve once the heap drains
// below a quarter of its capacity, must never shrink below
// frameShrinkMinCap, and the ordering invariant must survive every
// resize.
func TestFrameHeapShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	var h frameHeap
	var next uint64
	live := 0
	push := func(k int) {
		for i := 0; i < k; i++ {
			h.push(frame{arrival: sim.Time(rng.Intn(1000)), seq: next})
			next++
			live++
		}
	}
	popChecked := func(k int) {
		last := frame{arrival: -1}
		for i := 0; i < k && live > 0; i++ {
			f := h.pop()
			if i > 0 && frameLess(f, last) {
				t.Fatalf("pop out of order after resize: %d < %d", f.arrival, last.arrival)
			}
			last = f
			live--
		}
	}

	// Burst far past the shrink floor, then drain: capacity must come
	// back down once len < cap/4.
	push(4 * frameShrinkMinCap)
	grown := cap(h)
	if grown < 4*frameShrinkMinCap {
		t.Fatalf("cap %d after %d pushes", grown, 4*frameShrinkMinCap)
	}
	popChecked(live - frameShrinkMinCap/8)
	if cap(h) >= grown {
		t.Errorf("cap %d never shrank from %d after draining to %d", cap(h), grown, len(h))
	}

	// Below the floor the capacity must hold steady no matter how empty
	// the heap gets.
	push(frameShrinkMinCap / 2)
	small := cap(h)
	popChecked(live)
	if small >= frameShrinkMinCap && cap(h) < frameShrinkMinCap/4 {
		t.Errorf("cap %d shrank below the %d floor region", cap(h), frameShrinkMinCap)
	}

	// Fuzz the thresholds: random interleaved bursts, constantly checking
	// order; shrink decisions must never lose a frame.
	for round := 0; round < 200; round++ {
		if rng.Intn(2) == 0 {
			push(rng.Intn(300))
		} else {
			popChecked(rng.Intn(400))
		}
		if len(h) != live {
			t.Fatalf("round %d: heap len %d, want %d", round, len(h), live)
		}
	}
	popChecked(live)
	if len(h) != 0 {
		t.Fatalf("%d frames left after final drain", len(h))
	}
}

// TestBalancePlanSkew pins the dealer half of the load-imbalance
// regression at the unit level: one region with ~90% of the weight gets
// a worker to itself under LPT, and every region is dealt exactly once.
func TestBalancePlanSkew(t *testing.T) {
	weights := []int64{91, 4, 3, 2, 1}
	plan := balancePlan(weights, 2)
	seen := make(map[int]bool)
	for _, regs := range plan {
		for _, ri := range regs {
			if seen[ri] {
				t.Fatalf("region %d dealt twice: %v", ri, plan)
			}
			seen[ri] = true
		}
	}
	if len(seen) != len(weights) {
		t.Fatalf("dealt %d regions, want %d: %v", len(seen), len(weights), plan)
	}
	for w, regs := range plan {
		for _, ri := range regs {
			if ri == 0 && len(regs) != 1 {
				t.Errorf("worker %d holds the 90%% region plus %v", w, regs)
			}
		}
	}
}

// TestWeightOrderTies pins the deterministic tie-breaks: equal weights
// order by ascending region index.
func TestWeightOrderTies(t *testing.T) {
	order := weightOrder([]int64{5, 9, 5, 9, 1})
	want := []int{1, 3, 0, 2, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
