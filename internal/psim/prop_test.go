// Property-test harness for the multi-core engine (E14's satellite):
// randomized (partition, workers, seed, steal) sweeps assert that the
// worker count and dealing policy never change a byte of output, that
// the bulk construction path is equivalent to the serial AddMH loop,
// that a skewed partition both balances and stays exact, and that the
// worker pool's lifecycle (goroutine hygiene, panic propagation, more
// workers than regions) degrades cleanly. The tiers are miniature so
// the whole file stays inside `make check`'s -race budget.
package psim_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/psim"
	"repro/internal/rdpcore"
	"repro/internal/workload"
)

// propScript is the miniature workload every property trial uses.
func propScript(base rdpcore.Config, horizon time.Duration, mob workload.CellPicker) psim.ScriptConfig {
	return psim.ScriptConfig{
		Mobility: workload.Mobility{
			Picker:            mob,
			Residence:         netsim.Exponential{MeanDelay: 700 * time.Millisecond, Floor: 100 * time.Millisecond},
			InactiveProb:      0.2,
			InactiveDur:       netsim.Exponential{MeanDelay: 500 * time.Millisecond, Floor: 100 * time.Millisecond},
			MoveWhileInactive: 0.3,
		},
		Requests: workload.Requests{
			Interarrival: netsim.Exponential{MeanDelay: 800 * time.Millisecond, Floor: 50 * time.Millisecond},
			Servers:      serverList(base.NumServers),
			PayloadBytes: 32,
		},
		Horizon: horizon,
	}
}

// buildProp constructs a partitioned world with full engine knobs
// (worker count, dealing policy, bulk construction).
func buildProp(base rdpcore.Config, regions, workers int, steal bool,
	assign map[ids.MSS]int, mhs int, horizon time.Duration, bulk bool) *psim.World {
	cfg := psim.Config{
		Base:      base,
		Regions:   regions,
		Workers:   workers,
		WorkSteal: steal,
		Lookahead: 2 * time.Millisecond,
	}
	if assign != nil {
		cfg.AssignStation = func(id ids.MSS) int { return assign[id] }
	}
	pw := psim.New(cfg)
	cells := cellList(base.NumMSS)
	scfg := propScript(base, horizon, workload.UniformCells{Cells: cells})
	if bulk {
		pw.AddMHs(mhs, func(i int) (ids.MH, ids.MSS, []psim.MHEvent) {
			id := ids.MH(i + 1)
			start, events := psim.BuildScript(base.Seed, id, cells, scfg)
			return id, start, events
		})
	} else {
		for i := 1; i <= mhs; i++ {
			id := ids.MH(i)
			start, events := psim.BuildScript(base.Seed, id, cells, scfg)
			pw.AddMH(id, start, events)
		}
	}
	return pw
}

// TestPropSerialParallelSweep is the randomized determinism sweep:
// random partitions, seeds, worker counts from {2,4,8}, both dealing
// policies and both construction paths, each trial compared counter by
// counter against its own serial (Workers=1, AddMH loop) reference.
func TestPropSerialParallelSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const horizon = 3 * time.Second
	workerChoices := []int{2, 4, 8}
	for trial := 0; trial < 4; trial++ {
		seed := int64(1000 + rng.Intn(10000))
		regions := 2 + rng.Intn(3)
		workers := workerChoices[rng.Intn(len(workerChoices))]
		steal := rng.Intn(2) == 1
		bulk := rng.Intn(2) == 1
		base := e1Base(seed)
		assign := randomAssignment(rng, base.NumMSS, regions)
		label := fmt.Sprintf("trial=%d seed=%d regions=%d workers=%d steal=%v bulk=%v",
			trial, seed, regions, workers, steal, bulk)

		serial := buildProp(base, regions, 1, false, assign, 20, horizon, false)
		serial.RunUntil(horizon + horizon/2)
		parallel := buildProp(base, regions, workers, steal, assign, 20, horizon, bulk)
		parallel.RunUntil(horizon + horizon/2)

		assertRunsEqual(t, serial, parallel, label)
		if s := serial.Summary(); s.Issued == 0 {
			t.Fatalf("%s: workload issued nothing", label)
		}
	}
}

// TestPropAddMHsMatchesLoop pins the bulk-construction equivalence in
// isolation: the same world populated by AddMHs and by the serial AddMH
// loop, both run serially, must be byte-identical — construction
// parallelism must not leak into kernel sequence numbers.
func TestPropAddMHsMatchesLoop(t *testing.T) {
	const horizon = 3 * time.Second
	base := e1Base(4242)
	loop := buildProp(base, 3, 1, false, nil, 24, horizon, false)
	loop.RunUntil(horizon + horizon/2)
	bulk := buildProp(base, 3, 4, false, nil, 24, horizon, true)
	bulk.RunUntil(horizon + horizon/2)
	assertRunsEqual(t, loop, bulk, "addmhs")
}

// TestSkewedPartitionBalance is the load-imbalance regression: a
// partition where one region starts with ~90% of the hosts must (a)
// show the size-aware dealer giving that region a worker to itself,
// and (b) still produce output identical to the serial run.
func TestSkewedPartitionBalance(t *testing.T) {
	const (
		horizon = 3 * time.Second
		regions = 4
		mhs     = 40
	)
	base := e1Base(99)
	// Station 1 alone is region 0; the rest spread over regions 1..3.
	assign := map[ids.MSS]int{}
	for i := 1; i <= base.NumMSS; i++ {
		if i == 1 {
			assign[ids.MSS(i)] = 0
		} else {
			assign[ids.MSS(i)] = 1 + (i-2)%(regions-1)
		}
	}
	buildSkewed := func(workers int) *psim.World {
		cfg := psim.Config{
			Base:          base,
			Regions:       regions,
			Workers:       workers,
			Lookahead:     2 * time.Millisecond,
			AssignStation: func(id ids.MSS) int { return assign[id] },
		}
		pw := psim.New(cfg)
		cells := cellList(base.NumMSS)
		scfg := propScript(base, horizon, workload.UniformCells{Cells: cells})
		for i := 1; i <= mhs; i++ {
			id := ids.MH(i)
			_, events := psim.BuildScript(base.Seed, id, cells, scfg)
			start := ids.MSS(1) // 90% of hosts crowd region 0's only station
			if i%10 == 0 {
				start = ids.MSS(2)
			}
			pw.AddMH(id, start, events)
		}
		return pw
	}

	parallel := buildSkewed(2)
	weights := parallel.RegionWeights()
	if weights[0] != 1+int64(mhs-mhs/10) {
		t.Fatalf("region 0 weight = %d, want %d", weights[0], 1+mhs-mhs/10)
	}
	plan, loads := parallel.WorkerPlan()
	if len(plan) != 2 {
		t.Fatalf("plan for %d workers: %v", len(plan), plan)
	}
	found := false
	for w, regs := range plan {
		for _, ri := range regs {
			if ri != 0 {
				continue
			}
			found = true
			if len(regs) != 1 {
				t.Errorf("worker %d holds the skewed region plus %v (loads %v)", w, regs, loads)
			}
		}
	}
	if !found {
		t.Fatalf("region 0 missing from plan %v", plan)
	}

	serial := buildSkewed(1)
	serial.RunUntil(horizon + horizon/2)
	parallel.RunUntil(horizon + horizon/2)
	assertRunsEqual(t, serial, parallel, "skewed")
}

// TestPropAggregatedSerialParallel extends the serial==parallel
// property to the E16 aggregated representation, and pins the stronger
// claim behind it: with no GroupTopic the set-backed tables are a pure
// data-structure swap, so a faithful serial run, an aggregated serial
// run and an aggregated parallel run of the same seed must all produce
// identical summaries and region stats.
func TestPropAggregatedSerialParallel(t *testing.T) {
	const horizon = 3 * time.Second
	faithfulBase := e1Base(1234)
	aggBase := faithfulBase
	aggBase.AggregatedState = true

	faithful := buildProp(faithfulBase, 3, 1, false, nil, 20, horizon, false)
	faithful.RunUntil(horizon + horizon/2)
	serial := buildProp(aggBase, 3, 1, false, nil, 20, horizon, false)
	serial.RunUntil(horizon + horizon/2)
	parallel := buildProp(aggBase, 3, 4, true, nil, 20, horizon, true)
	parallel.RunUntil(horizon + horizon/2)

	assertRunsEqual(t, faithful, serial, "aggregated vs faithful representation")
	assertRunsEqual(t, serial, parallel, "aggregated serial vs parallel")
	if s := serial.Summary(); s.Issued == 0 {
		t.Fatal("workload issued nothing")
	}
}

// waitGoroutines polls until the goroutine count drops back to at most
// base (workers unwind asynchronously after pool.stop closes their
// channels).
func waitGoroutines(t *testing.T, base int, label string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("%s: %d goroutines still alive (baseline %d)", label, runtime.NumGoroutine(), base)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPoolGoroutineHygiene checks startPool/stop leaves no workers
// behind, across repeated RunUntil slices.
func TestPoolGoroutineHygiene(t *testing.T) {
	const horizon = 2 * time.Second
	baseline := runtime.NumGoroutine()
	pw := buildProp(e1Base(7), 4, 4, false, nil, 12, horizon, false)
	for _, d := range []time.Duration{horizon / 2, horizon, horizon + horizon/2} {
		pw.RunUntil(d)
		waitGoroutines(t, baseline, "after RunUntil slice")
	}
}

// TestPoolPanicPropagation drives a region into a panic mid-window (a
// script migrating to a cell no region owns) and requires the parallel
// engine to surface it as a panic naming the region — not deadlock the
// barrier, not leak workers.
func TestPoolPanicPropagation(t *testing.T) {
	const horizon = 2 * time.Second
	baseline := runtime.NumGoroutine()
	base := e1Base(3)
	pw := psim.New(psim.Config{Base: base, Regions: 2, Workers: 2, Lookahead: 2 * time.Millisecond})
	pw.AddMH(1, 1, []psim.MHEvent{
		{At: 100 * time.Millisecond, Kind: psim.EvMigrate, Cell: ids.MSS(999)},
	})
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		pw.RunUntil(horizon)
		done <- nil
	}()
	select {
	case v := <-done:
		if v == nil {
			t.Fatal("RunUntil returned without panicking")
		}
		msg := fmt.Sprint(v)
		if !strings.Contains(msg, "region") || !strings.Contains(msg, "unknown cell") {
			t.Errorf("panic %q does not name the region and cause", msg)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("panic in region deadlocked the barrier")
	}
	waitGoroutines(t, baseline+1, "after region panic") // +1: the test goroutine may still unwind
}

// TestWorkersExceedRegions checks the degenerate pool shapes: more
// workers than regions (clamped), zero workers (GOMAXPROCS default),
// and work stealing with a single region — all must equal the serial
// run.
func TestWorkersExceedRegions(t *testing.T) {
	const horizon = 3 * time.Second
	base := e1Base(21)
	serial := buildProp(base, 2, 1, false, nil, 12, horizon, false)
	serial.RunUntil(horizon + horizon/2)
	for _, tc := range []struct {
		workers int
		steal   bool
		label   string
	}{
		{8, false, "workers=8 regions=2"},
		{0, false, "workers=default"},
		{8, true, "workers=8 steal"},
	} {
		pw := buildProp(base, 2, tc.workers, tc.steal, nil, 12, horizon, false)
		pw.RunUntil(horizon + horizon/2)
		assertRunsEqual(t, serial, pw, tc.label)
	}
}
