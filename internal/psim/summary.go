package psim

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/rdpcore"
)

// Summary aggregates the headline metrics over all regions. These are
// the partition-invariant numbers: scripted workloads issue the same
// requests under any partition, the protocol delivers every one of them
// exactly once, so Issued, Delivered, Ratio and Duplicates must agree
// between a 1-region and an R-region run of the same seed. The
// remaining fields are exact across worker counts for a fixed
// partition, but may legitimately differ across partitions (a region
// transfer delays a migrating host by one lookahead, shifting hand-off
// and retransmission timing).
type Summary struct {
	Issued     int64
	Delivered  int64
	Ratio      float64
	Duplicates int64

	Handoffs        int64
	Retransmissions int64
	UpdateCurrLocs  int64
	AckForwards     int64
	WirelessDrops   int64
	WiredDrops      int64
	NetworkShed     int64
	Violations      int64

	// CrossFrames counts frames that crossed a region boundary (wired
	// messages + host transfers); zero with one region.
	CrossFrames int64
	// Steps sums executed events over all region kernels.
	Steps uint64
}

// Summary computes the aggregate. Call after RunUntil returns (it reads
// per-region state single-threaded).
func (pw *World) Summary() Summary {
	var s Summary
	for _, r := range pw.regions {
		st := r.world.Stats
		s.Issued += st.RequestsIssued.Value()
		s.Delivered += st.ResultsDelivered.Value()
		s.Duplicates += st.DuplicateDeliveries.Value()
		s.Handoffs += st.Handoffs.Value()
		s.Retransmissions += st.Retransmissions.Value()
		s.UpdateCurrLocs += st.UpdateCurrLocs.Value()
		s.AckForwards += st.AckForwards.Value()
		s.WirelessDrops += st.WirelessDrops.Value()
		s.WiredDrops += st.WiredDrops.Value()
		s.NetworkShed += st.NetworkShed.Value()
		s.Violations += st.Violations.Value()
		s.Steps += r.kernel.Steps()
	}
	s.CrossFrames = pw.crossFrames
	if s.Issued > 0 {
		s.Ratio = float64(s.Delivered) / float64(s.Issued)
	}
	return s
}

// RegionStats returns each region's stats, in region order — the
// fine-grained view behind Summary, used by the determinism tests to
// compare serial and parallel runs counter by counter.
func (pw *World) RegionStats() []*rdpcore.Stats {
	out := make([]*rdpcore.Stats, len(pw.regions))
	for i, r := range pw.regions {
		out[i] = r.world.Stats
	}
	return out
}

// Regions returns the partition count.
func (pw *World) Regions() int { return len(pw.regions) }

// IssuedRequests returns every scripted request recorded during the
// run, grouped by the region that issued it (region order, issue order
// within a region).
func (pw *World) IssuedRequests() [][]Issued {
	out := make([][]Issued, len(pw.regions))
	for i, r := range pw.regions {
		out[i] = append([]Issued(nil), r.issued...)
	}
	return out
}

// MissingResults returns the scripted requests whose results never
// reached their hosts — empty after a run with sufficient drain time,
// per the delivery guarantee. Call after RunUntil.
func (pw *World) MissingResults() []Issued {
	var missing []Issued
	for _, r := range pw.regions {
		for _, iss := range r.issued {
			if !pw.findMH(iss.MH).Seen(iss.Req) {
				missing = append(missing, iss)
			}
		}
	}
	return missing
}

// findMH locates a host's node in whichever region currently owns it.
func (pw *World) findMH(id ids.MH) *rdpcore.MHNode {
	for _, r := range pw.regions {
		if h, ok := r.world.MHs[id]; ok {
			return h
		}
	}
	panic(fmt.Sprintf("psim: %v not attached to any region", id))
}
