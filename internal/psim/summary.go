package psim

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/rdpcore"
)

// Summary aggregates the headline metrics over all regions. These are
// the partition-invariant numbers: scripted workloads issue the same
// requests under any partition, the protocol delivers every one of them
// exactly once, so Issued, Delivered, Ratio and Duplicates must agree
// between a 1-region and an R-region run of the same seed. The
// remaining fields are exact across worker counts for a fixed
// partition, but may legitimately differ across partitions (a region
// transfer delays a migrating host by one lookahead, shifting hand-off
// and retransmission timing).
type Summary struct {
	Issued     int64
	Delivered  int64
	Ratio      float64
	Duplicates int64

	Handoffs        int64
	Retransmissions int64
	UpdateCurrLocs  int64
	AckForwards     int64
	WirelessDrops   int64
	WiredDrops      int64
	NetworkShed     int64
	Violations      int64

	// CrossFrames counts frames that crossed a region boundary (wired
	// messages + host transfers); zero with one region.
	CrossFrames int64
	// Steps sums executed events over all region kernels.
	Steps uint64
}

// add accumulates one region's counters into the partial.
func (s *Summary) add(r *region) {
	st := r.world.Stats
	s.Issued += st.RequestsIssued.Value()
	s.Delivered += st.ResultsDelivered.Value()
	s.Duplicates += st.DuplicateDeliveries.Value()
	s.Handoffs += st.Handoffs.Value()
	s.Retransmissions += st.Retransmissions.Value()
	s.UpdateCurrLocs += st.UpdateCurrLocs.Value()
	s.AckForwards += st.AckForwards.Value()
	s.WirelessDrops += st.WirelessDrops.Value()
	s.WiredDrops += st.WiredDrops.Value()
	s.NetworkShed += st.NetworkShed.Value()
	s.Violations += st.Violations.Value()
	s.CrossFrames += r.crossFrames
	s.Steps += r.kernel.Steps()
}

// Summary computes the aggregate. Call after RunUntil returns. With
// Workers > 1 the per-region sums are computed in parallel shards and
// reduced in worker order; integer addition is associative and the
// shard boundaries are a pure function of (regions, workers), so the
// result is identical to the serial sum.
func (pw *World) Summary() Summary {
	partials := make([]Summary, pw.workers)
	pw.parforChunks(len(pw.regions), func(chunk, lo, hi int) {
		for _, r := range pw.regions[lo:hi] {
			partials[chunk].add(r)
		}
	})
	var s Summary
	for i := range partials {
		s.Issued += partials[i].Issued
		s.Delivered += partials[i].Delivered
		s.Duplicates += partials[i].Duplicates
		s.Handoffs += partials[i].Handoffs
		s.Retransmissions += partials[i].Retransmissions
		s.UpdateCurrLocs += partials[i].UpdateCurrLocs
		s.AckForwards += partials[i].AckForwards
		s.WirelessDrops += partials[i].WirelessDrops
		s.WiredDrops += partials[i].WiredDrops
		s.NetworkShed += partials[i].NetworkShed
		s.Violations += partials[i].Violations
		s.CrossFrames += partials[i].CrossFrames
		s.Steps += partials[i].Steps
	}
	if s.Issued > 0 {
		s.Ratio = float64(s.Delivered) / float64(s.Issued)
	}
	return s
}

// RegionStats returns each region's stats, in region order — the
// fine-grained view behind Summary, used by the determinism tests to
// compare serial and parallel runs counter by counter.
func (pw *World) RegionStats() []*rdpcore.Stats {
	out := make([]*rdpcore.Stats, len(pw.regions))
	for i, r := range pw.regions {
		out[i] = r.world.Stats
	}
	return out
}

// Regions returns the partition count.
func (pw *World) Regions() int { return len(pw.regions) }

// IssuedRequests returns every scripted request recorded during the
// run, grouped by the region that issued it (region order, issue order
// within a region).
func (pw *World) IssuedRequests() [][]Issued {
	out := make([][]Issued, len(pw.regions))
	for i, r := range pw.regions {
		out[i] = append([]Issued(nil), r.issued...)
	}
	return out
}

// MissingResults returns the scripted requests whose results never
// reached their hosts — empty after a run with sufficient drain time,
// per the delivery guarantee. Call after RunUntil. The scan
// parallelizes over issuing regions (MHNode.Seen is a read of settled
// post-run state through an index built up front), and the shards
// concatenate in region order, so the report is deterministic.
func (pw *World) MissingResults() []Issued {
	// Merged host index, built serially: a host issued in one region may
	// have migrated and finished the run owned by another.
	nodes := make(map[ids.MH]*rdpcore.MHNode, len(pw.scripts))
	for _, r := range pw.regions {
		for id, h := range r.world.MHs {
			nodes[id] = h
		}
	}
	perRegion := make([][]Issued, len(pw.regions))
	pw.parfor(len(pw.regions), func(i int) {
		for _, iss := range pw.regions[i].issued {
			h, ok := nodes[iss.MH]
			if !ok {
				panic(fmt.Sprintf("psim: %v not attached to any region", iss.MH))
			}
			if !h.Seen(iss.Req) {
				perRegion[i] = append(perRegion[i], iss)
			}
		}
	})
	var missing []Issued
	for _, m := range perRegion {
		missing = append(missing, m...)
	}
	return missing
}
