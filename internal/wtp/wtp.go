// Package wtp implements the windowed wireless transport (E15): a
// per-(MSS, MH) sliding-window ARQ with cumulative + selective
// acknowledgments, Jacobson/Karn round-trip estimation driving the
// retransmission timeout, an AIMD congestion window (slow start,
// halve-on-loss), and downlink coalescing — many small results destined
// for one mobile merge into a single frame up to an MTU budget.
//
// The package is substrate-agnostic and deliberately free of any
// randomness: all state advances through the deterministic
// sim.Scheduler, so a windowed link inside a psim region replays
// identically under any worker count. netsim.Wireless drives it with
// simulated radio frames; tcpnet mirrors it over real sockets the way
// EnableARQ mirrors the wired stop-and-wait ARQ.
//
// Contrast with netsim.ARQSender (the E10 link layer): that protocol
// retransmits each frame independently with no window, no congestion
// response and no batching — fine for the fast wired backbone, but on a
// lossy high-latency radio link it serializes one frame per round trip.
// wtp keeps min(Window, cwnd) frames in flight and packs multiple
// results per frame, which is where the E15 goodput multiple comes
// from.
package wtp

import (
	"sort"
	"time"

	"repro/internal/msg"
	"repro/internal/sim"
)

// Config parameterizes one direction of a windowed link. The zero value
// (with Enabled set) gives a sensible radio-link tuning; every knob has
// a documented default.
type Config struct {
	// Enabled turns the windowed transport on. Off, the owning
	// substrate must not touch this package at all — the legacy path
	// stays byte-identical.
	Enabled bool

	// Window caps the frames in flight regardless of the congestion
	// window (default 32). Window 1 with MTU 1 degenerates to a classic
	// stop-and-wait ARQ — the E15 baseline rows use exactly that.
	Window int

	// MTU is the coalescing byte budget per data frame (default 1024).
	// A frame closes as soon as adding the next message would exceed
	// it; a single oversized message still travels alone.
	MTU int

	// CoalesceDelay bounds how long a partially filled frame may wait
	// for more traffic before it is flushed (default 2ms). Negative
	// disables the delay: every queued message flushes immediately.
	CoalesceDelay time.Duration

	// InitialRTO seeds the retransmission timeout before the first RTT
	// sample (default 100ms). MinRTO/MaxRTO clamp the estimator
	// (defaults 20ms / 2s).
	InitialRTO time.Duration
	MinRTO     time.Duration
	MaxRTO     time.Duration

	// InitialCwnd is the slow-start entry window in frames (default 2).
	InitialCwnd int

	// DupThresh is the selective-ack gap count that triggers a fast
	// retransmission (default 3, TCP's classic dupack threshold).
	DupThresh int

	// MaxRetries bounds the transmission attempts per frame (default
	// 12). A frame that exhausts it resets the link: every pending
	// frame is dropped and the epoch bumps, restoring the paper's
	// silent-loss semantics so the proxy-level recovery machinery
	// (re-greets, request retries) takes over for an unreachable host.
	MaxRetries int

	// MaxSacks caps the selective-ack blocks carried per ack frame
	// (default 32).
	MaxSacks int

	// Metric hooks, all optional and invoked synchronously on the
	// kernel goroutine. OnRTTSample fires per Karn-valid sample with
	// the new smoothed RTO; OnCwnd after every congestion-window
	// change; OnRetransmit per timeout or fast retransmission; OnFrame
	// at each first transmission with the coalesced message count;
	// OnReset when a link gives up, with the messages dropped.
	OnRTTSample  func(rtt, rto time.Duration)
	OnCwnd       func(cwnd int)
	OnRetransmit func()
	OnFrame      func(msgs int)
	OnReset      func(droppedMsgs int)
}

func (c Config) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return 32
}

func (c Config) mtu() int {
	if c.MTU > 0 {
		return c.MTU
	}
	return 1024
}

func (c Config) coalesceDelay() time.Duration {
	if c.CoalesceDelay < 0 {
		return 0
	}
	if c.CoalesceDelay == 0 {
		return 2 * time.Millisecond
	}
	return c.CoalesceDelay
}

func (c Config) initialRTO() time.Duration {
	if c.InitialRTO > 0 {
		return c.InitialRTO
	}
	return 100 * time.Millisecond
}

func (c Config) minRTO() time.Duration {
	if c.MinRTO > 0 {
		return c.MinRTO
	}
	return 20 * time.Millisecond
}

func (c Config) maxRTO() time.Duration {
	if c.MaxRTO > 0 {
		return c.MaxRTO
	}
	return 2 * time.Second
}

func (c Config) initialCwnd() int {
	if c.InitialCwnd > 0 {
		return c.InitialCwnd
	}
	return 2
}

func (c Config) dupThresh() int {
	if c.DupThresh > 0 {
		return c.DupThresh
	}
	return 3
}

func (c Config) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 12
}

func (c Config) maxSacks() int {
	if c.MaxSacks > 0 {
		return c.MaxSacks
	}
	return 32
}

// frame is one in-flight (or backlogged) data frame.
type frame struct {
	seq     uint64
	inner   []msg.Message
	attempt int // transmissions so far (0 = still backlogged)
	sentAt  sim.Time
	rtxed   bool // ever retransmitted: Karn's rule bars its RTT sample
	gapAcks int  // acks seen that advanced past this hole
	timer   sim.Canceler
}

// Sender is the transmit half of one directed windowed link. All
// methods must be called from the owning kernel's goroutine.
type Sender struct {
	k        sim.Scheduler
	cfg      Config
	transmit func(msg.WtpData)

	epoch   uint64
	nextSeq uint64

	// Coalescing buffer: messages accepted but not yet framed.
	pend      []msg.Message
	pendBytes int
	flush     sim.Canceler

	backlog []uint64          // framed, waiting for the window to open
	pending map[uint64]*frame // transmitted, not yet acknowledged

	// Congestion and RTT state.
	cwnd     float64
	ssthresh float64
	srtt     time.Duration
	rttvar   time.Duration
	rto      time.Duration
	// recoverSeq implements one-cut-per-loss-event (NewReno style):
	// losses at or below it belong to an already-penalized event.
	recoverSeq uint64

	// Counters, exported for tests and substrate-level aggregation.
	Retransmits     int64
	FastRetransmits int64
	Resets          int64
	FramesSent      int64 // first transmissions
	MsgsFramed      int64 // messages carried by first transmissions
}

// NewSender builds a sender that emits frames via transmit. The
// callback owns actual delivery (radio simulation, socket write); the
// sender only decides what to send when.
func NewSender(k sim.Scheduler, cfg Config, transmit func(msg.WtpData)) *Sender {
	s := &Sender{
		k:        k,
		cfg:      cfg,
		transmit: transmit,
		pending:  make(map[uint64]*frame),
		cwnd:     float64(cfg.initialCwnd()),
		ssthresh: float64(cfg.window()),
		rto:      cfg.initialRTO(),
	}
	return s
}

// Epoch returns the current link epoch (bumped by every reset).
func (s *Sender) Epoch() uint64 { return s.epoch }

// Cwnd returns the current congestion window in frames.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// RTO returns the current retransmission timeout.
func (s *Sender) RTO() time.Duration { return s.rto }

// SRTT returns the smoothed round-trip estimate (0 before any sample).
func (s *Sender) SRTT() time.Duration { return s.srtt }

// Outstanding reports frames transmitted and not yet acknowledged.
func (s *Sender) Outstanding() int { return len(s.pending) }

// Backlog reports frames and unframed messages waiting for the window.
func (s *Sender) Backlog() int { return len(s.backlog) + len(s.pend) }

// Queue accepts one message for (coalesced) reliable delivery.
func (s *Sender) Queue(m msg.Message) {
	sz := msg.WireSize(m)
	if len(s.pend) > 0 && s.pendBytes+sz > s.cfg.mtu() {
		s.flushNow()
	}
	s.pend = append(s.pend, m)
	s.pendBytes += sz
	if s.pendBytes >= s.cfg.mtu() {
		s.flushNow()
		return
	}
	if s.flush == nil {
		d := s.cfg.coalesceDelay()
		if d <= 0 {
			s.flushNow()
			return
		}
		s.flush = s.k.After(d, func() {
			s.flush = nil
			s.flushNow()
		})
	}
}

// flushNow closes the coalescing buffer into one frame and pumps.
func (s *Sender) flushNow() {
	if s.flush != nil {
		s.flush.Cancel()
		s.flush = nil
	}
	if len(s.pend) == 0 {
		return
	}
	s.nextSeq++
	f := &frame{seq: s.nextSeq, inner: s.pend}
	s.pend = nil
	s.pendBytes = 0
	s.pending[f.seq] = f
	s.backlog = append(s.backlog, f.seq)
	s.pump()
}

// effWindow is the effective send window: min(Window, floor(cwnd)),
// never below 1 so the link cannot deadlock.
func (s *Sender) effWindow() int {
	w := int(s.cwnd)
	if max := s.cfg.window(); w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// inflight counts transmitted-but-unacked frames (backlogged frames
// live in pending too but have not consumed window yet).
func (s *Sender) inflight() int { return len(s.pending) - len(s.backlog) }

// pump transmits backlogged frames while the window has room.
func (s *Sender) pump() {
	for len(s.backlog) > 0 && s.inflight() < s.effWindow() {
		seq := s.backlog[0]
		s.backlog = s.backlog[1:]
		f, ok := s.pending[seq]
		if !ok {
			continue
		}
		s.sendFrame(f)
	}
}

// sendFrame performs one transmission attempt of f and arms its timer.
func (s *Sender) sendFrame(f *frame) {
	f.attempt++
	if f.attempt == 1 {
		f.sentAt = s.k.Now()
		s.FramesSent++
		s.MsgsFramed += int64(len(f.inner))
		if s.cfg.OnFrame != nil {
			s.cfg.OnFrame(len(f.inner))
		}
	}
	s.transmit(msg.WtpData{Epoch: s.epoch, Seq: f.seq, Inner: f.inner})
	s.arm(f)
}

// arm schedules f's retransmission with per-frame exponential backoff
// over the current smoothed RTO.
func (s *Sender) arm(f *frame) {
	d := s.rto
	max := s.cfg.maxRTO()
	for i := 1; i < f.attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	epoch := s.epoch
	f.timer = s.k.After(d, func() {
		if s.epoch != epoch {
			return
		}
		if cur, live := s.pending[f.seq]; !live || cur != f {
			return
		}
		if f.attempt >= s.cfg.maxRetries() {
			s.reset()
			return
		}
		s.onLoss(f.seq)
		f.rtxed = true
		s.Retransmits++
		if s.cfg.OnRetransmit != nil {
			s.cfg.OnRetransmit()
		}
		s.sendFrame(f)
	})
}

// onLoss applies the multiplicative decrease once per loss event: the
// congestion window halves (slow-start threshold follows) unless a cut
// already covered this sequence range.
func (s *Sender) onLoss(seq uint64) {
	if seq <= s.recoverSeq {
		return
	}
	s.recoverSeq = s.nextSeq
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 1 {
		s.ssthresh = 1
	}
	s.cwnd = s.ssthresh
	if s.cfg.OnCwnd != nil {
		s.cfg.OnCwnd(int(s.cwnd))
	}
}

// ackFrame retires one frame: timer off, Karn-valid RTT sample,
// additive (or slow-start) window growth.
func (s *Sender) ackFrame(f *frame) {
	if f.timer != nil {
		f.timer.Cancel()
		f.timer = nil
	}
	delete(s.pending, f.seq)
	if f.attempt >= 1 && !f.rtxed {
		s.sampleRTT(time.Duration(s.k.Now() - f.sentAt))
	}
	if s.cwnd < s.ssthresh {
		s.cwnd++ // slow start: one frame per acked frame
	} else {
		s.cwnd += 1 / s.cwnd // congestion avoidance: ~one per RTT
	}
	if max := float64(s.cfg.window()); s.cwnd > max {
		s.cwnd = max
	}
	if s.cfg.OnCwnd != nil {
		s.cfg.OnCwnd(int(s.cwnd))
	}
}

// sampleRTT folds one round-trip sample into the Jacobson estimator
// and recomputes the RTO: srtt + max(4·rttvar, MinRTO), clamped to
// [MinRTO, MaxRTO]. The slack floor is the RFC 6298 granularity guard:
// on a constant-delay link rttvar decays toward zero and a bare
// srtt + 4·rttvar converges to exactly one round trip, so the timer
// would race every ack and retransmit frames that are merely in
// flight.
func (s *Sender) sampleRTT(rtt time.Duration) {
	if rtt < 0 {
		return
	}
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		diff := s.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	slack := 4 * s.rttvar
	if min := s.cfg.minRTO(); slack < min {
		slack = min
	}
	s.rto = s.srtt + slack
	if min := s.cfg.minRTO(); s.rto < min {
		s.rto = min
	}
	if max := s.cfg.maxRTO(); s.rto > max {
		s.rto = max
	}
	if s.cfg.OnRTTSample != nil {
		s.cfg.OnRTTSample(rtt, s.rto)
	}
}

// OnAck processes one acknowledgment frame from the receiver.
func (s *Sender) OnAck(a msg.WtpAck) {
	if a.Epoch != s.epoch {
		return // stale epoch: a reset outran this ack
	}
	// Cumulative portion: everything at or below Cum is delivered.
	// Iterate the pending map via the backlog-free seq range; pending
	// is small (≤ Window + backlog), so a scan is fine — but keep it
	// deterministic by collecting and sorting.
	var acked []uint64
	for seq := range s.pending {
		if seq <= a.Cum {
			acked = append(acked, seq)
		}
	}
	sort.Slice(acked, func(i, j int) bool { return acked[i] < acked[j] })
	for _, seq := range acked {
		s.ackFrame(s.pending[seq])
	}
	// Selective portion: sacked frames are held by the receiver for
	// reordering; they are as delivered as the cumulative ones.
	topSack := a.Cum
	for _, seq := range a.Sacks {
		if seq > topSack {
			topSack = seq
		}
		if f, ok := s.pending[seq]; ok {
			s.ackFrame(f)
		}
	}
	// Gap detection: every in-flight frame below the highest sacked
	// sequence was overtaken; enough overtakes trigger one fast
	// retransmission (and one window cut per loss event).
	if topSack > a.Cum {
		var holes []uint64
		for seq, f := range s.pending {
			if seq < topSack && f.attempt > 0 {
				holes = append(holes, seq)
			}
		}
		sort.Slice(holes, func(i, j int) bool { return holes[i] < holes[j] })
		for _, seq := range holes {
			f := s.pending[seq]
			f.gapAcks++
			if f.gapAcks >= s.cfg.dupThresh() {
				f.gapAcks = 0
				s.onLoss(seq)
				f.rtxed = true
				s.FastRetransmits++
				s.Retransmits++
				if s.cfg.OnRetransmit != nil {
					s.cfg.OnRetransmit()
				}
				if f.timer != nil {
					f.timer.Cancel()
				}
				s.sendFrame(f)
			}
		}
	}
	s.pump()
}

// Reset abandons the link: every pending, backlogged and coalescing
// message is dropped, the epoch bumps (so stale frames and acks are
// ignored on both ends), and the congestion state returns to its
// initial tuning. The higher layers' recovery machinery — proxy
// retransmission on re-greet, client request retries — owns whatever
// was dropped, exactly as it owns a plain radio loss.
func (s *Sender) Reset() { s.reset() }

func (s *Sender) reset() {
	dropped := len(s.pend)
	for _, f := range s.pending {
		if f.timer != nil {
			f.timer.Cancel()
		}
		dropped += len(f.inner)
	}
	s.pending = make(map[uint64]*frame)
	s.backlog = nil
	s.pend = nil
	s.pendBytes = 0
	if s.flush != nil {
		s.flush.Cancel()
		s.flush = nil
	}
	s.epoch++
	s.nextSeq = 0
	s.recoverSeq = 0
	s.cwnd = float64(s.cfg.initialCwnd())
	s.ssthresh = float64(s.cfg.window())
	s.srtt = 0
	s.rttvar = 0
	s.rto = s.cfg.initialRTO()
	s.Resets++
	if s.cfg.OnReset != nil {
		s.cfg.OnReset(dropped)
	}
}

// Receiver is the receive half: it reorders frames into sequence
// order, produces one ack per arriving frame (cumulative watermark +
// selective blocks), and hands back the coalesced messages ready for
// in-order delivery.
type Receiver struct {
	cfg   Config
	epoch uint64
	cum   uint64 // every seq <= cum delivered
	ahead map[uint64][]msg.Message

	// Duplicates counts redundant data frames (retransmissions that
	// lost the race with their ack).
	Duplicates int64
}

// NewReceiver returns an empty receiver.
func NewReceiver(cfg Config) *Receiver {
	return &Receiver{cfg: cfg, ahead: make(map[uint64][]msg.Message)}
}

// Cum returns the in-order delivery watermark (test hook).
func (r *Receiver) Cum() uint64 { return r.cum }

// Accept processes one data frame. ok=false means the frame belongs to
// a dead epoch and must be ignored entirely (no ack — the sender that
// cares has moved on). Otherwise deliver holds the messages newly
// deliverable in sequence order (possibly none) and ack is the
// acknowledgment to send back.
func (r *Receiver) Accept(f msg.WtpData) (deliver []msg.Message, ack msg.WtpAck, ok bool) {
	if f.Epoch < r.epoch {
		return nil, msg.WtpAck{}, false
	}
	if f.Epoch > r.epoch {
		// The sender reset: adopt the new epoch with fresh state.
		r.epoch = f.Epoch
		r.cum = 0
		r.ahead = make(map[uint64][]msg.Message)
	}
	_, buffered := r.ahead[f.Seq]
	switch {
	case f.Seq <= r.cum || buffered:
		r.Duplicates++
	default:
		if f.Inner == nil {
			f.Inner = []msg.Message{} // presence must survive an empty frame
		}
		r.ahead[f.Seq] = f.Inner
		for {
			inner, ok := r.ahead[r.cum+1]
			if !ok {
				break
			}
			deliver = append(deliver, inner...)
			delete(r.ahead, r.cum+1)
			r.cum++
		}
	}
	ack = msg.WtpAck{Epoch: r.epoch, Cum: r.cum}
	if len(r.ahead) > 0 {
		sacks := make([]uint64, 0, len(r.ahead))
		for seq := range r.ahead {
			sacks = append(sacks, seq)
		}
		sort.Slice(sacks, func(i, j int) bool { return sacks[i] < sacks[j] })
		if max := r.cfg.maxSacks(); len(sacks) > max {
			sacks = sacks[:max]
		}
		ack.Sacks = sacks
	}
	return deliver, ack, true
}
