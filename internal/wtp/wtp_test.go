package wtp

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
)

// pipe wires a Sender to a Receiver over a lossy constant-latency link
// on one kernel, mimicking what netsim.Wireless does in production.
type pipe struct {
	k       *sim.Kernel
	s       *Sender
	r       *Receiver
	latency time.Duration

	// dropData[n] drops the nth data-frame transmission (1-based);
	// dropAcks does the same for acks.
	dataSent int
	ackSent  int
	dropData map[int]bool
	dropAcks map[int]bool

	delivered []msg.Message
}

func newPipe(t *testing.T, cfg Config, latency time.Duration) *pipe {
	t.Helper()
	p := &pipe{
		k:        sim.NewKernel(1),
		latency:  latency,
		dropData: map[int]bool{},
		dropAcks: map[int]bool{},
	}
	p.r = NewReceiver(cfg)
	p.s = NewSender(p.k, cfg, func(f msg.WtpData) {
		p.dataSent++
		if p.dropData[p.dataSent] {
			return
		}
		p.k.After(p.latency, func() {
			deliver, ack, ok := p.r.Accept(f)
			if !ok {
				return
			}
			p.delivered = append(p.delivered, deliver...)
			p.ackSent++
			if p.dropAcks[p.ackSent] {
				return
			}
			p.k.After(p.latency, func() { p.s.OnAck(ack) })
		})
	})
	return p
}

func req(seq uint32) msg.Message {
	return msg.ResultDeliver{Req: ids.RequestID{Origin: 1, Seq: seq}, Payload: []byte("r")}
}

func (p *pipe) queueN(n int) {
	for i := 0; i < n; i++ {
		p.s.Queue(req(uint32(i + 1)))
	}
}

func (p *pipe) assertInOrder(t *testing.T, n int) {
	t.Helper()
	if len(p.delivered) != n {
		t.Fatalf("delivered %d messages, want %d", len(p.delivered), n)
	}
	for i, m := range p.delivered {
		rd, ok := m.(msg.ResultDeliver)
		if !ok {
			t.Fatalf("delivered[%d] is %T", i, m)
		}
		if rd.Req.Seq != uint32(i+1) {
			t.Fatalf("delivered[%d] has seq %d, want %d (out of order)", i, rd.Req.Seq, i+1)
		}
	}
}

func TestCoalescesUpToMTU(t *testing.T) {
	cfg := Config{Enabled: true, MTU: 10 * msg.WireSize(req(1)), CoalesceDelay: 5 * time.Millisecond}
	p := newPipe(t, cfg, 2*time.Millisecond)
	p.queueN(25)
	p.k.Run()
	p.assertInOrder(t, 25)
	// 25 equal-size messages under a 10-message MTU: the budget closes
	// two full frames; the tail flushes on the coalescing timer.
	if p.s.FramesSent != 3 {
		t.Errorf("FramesSent = %d, want 3", p.s.FramesSent)
	}
	if p.s.MsgsFramed != 25 {
		t.Errorf("MsgsFramed = %d, want 25", p.s.MsgsFramed)
	}
}

func TestCoalesceDelayFlushesPartialFrame(t *testing.T) {
	cfg := Config{Enabled: true, CoalesceDelay: 3 * time.Millisecond}
	p := newPipe(t, cfg, time.Millisecond)
	p.s.Queue(req(1))
	if p.s.FramesSent != 0 {
		t.Fatalf("frame sent before coalescing delay elapsed")
	}
	p.k.Run()
	p.assertInOrder(t, 1)
	if p.s.FramesSent != 1 {
		t.Errorf("FramesSent = %d, want 1", p.s.FramesSent)
	}
}

func TestImmediateFlushWithNegativeDelay(t *testing.T) {
	cfg := Config{Enabled: true, CoalesceDelay: -1}
	p := newPipe(t, cfg, time.Millisecond)
	p.s.Queue(req(1))
	if p.s.FramesSent != 1 {
		t.Fatalf("FramesSent = %d, want immediate flush", p.s.FramesSent)
	}
	p.k.Run()
	p.assertInOrder(t, 1)
}

func TestStopAndWaitDegenerate(t *testing.T) {
	// Window 1 + MTU 1 + immediate flush: one message per frame, one
	// frame in flight — the E15 baseline configuration.
	cfg := Config{Enabled: true, Window: 1, MTU: 1, CoalesceDelay: -1}
	p := newPipe(t, cfg, 2*time.Millisecond)
	p.queueN(5)
	if got := p.s.Outstanding() - p.s.Backlog(); p.s.inflight() != 1 {
		t.Fatalf("inflight = %d (outstanding-backlog %d), want 1", p.s.inflight(), got)
	}
	p.k.Run()
	p.assertInOrder(t, 5)
	if p.s.FramesSent != 5 {
		t.Errorf("FramesSent = %d, want 5", p.s.FramesSent)
	}
}

func TestSlowStartGrowsWindow(t *testing.T) {
	cfg := Config{Enabled: true, MTU: 1, CoalesceDelay: -1, InitialCwnd: 2}
	p := newPipe(t, cfg, 2*time.Millisecond)
	start := p.s.Cwnd()
	p.queueN(20)
	p.k.Run()
	p.assertInOrder(t, 20)
	if p.s.Cwnd() <= start {
		t.Errorf("cwnd did not grow: %v -> %v", start, p.s.Cwnd())
	}
	if p.s.Retransmits != 0 {
		t.Errorf("unexpected retransmissions on a clean link: %d", p.s.Retransmits)
	}
}

func TestRTOBackoffAndKarn(t *testing.T) {
	cfg := Config{Enabled: true, MTU: 1, CoalesceDelay: -1, InitialRTO: 20 * time.Millisecond}
	p := newPipe(t, cfg, 2*time.Millisecond)
	// Drop the first two transmissions of the only frame.
	p.dropData[1] = true
	p.dropData[2] = true
	p.s.Queue(req(1))
	p.k.Run()
	p.assertInOrder(t, 1)
	if p.s.Retransmits != 2 {
		t.Errorf("Retransmits = %d, want 2", p.s.Retransmits)
	}
	// Karn's rule: the retransmitted frame must not have produced an
	// RTT sample, so srtt stays unset.
	if p.s.SRTT() != 0 {
		t.Errorf("retransmitted frame produced an RTT sample: srtt=%v", p.s.SRTT())
	}
}

func TestRTTSampleDrivesRTO(t *testing.T) {
	var samples int
	cfg := Config{
		Enabled: true, MTU: 1, CoalesceDelay: -1,
		OnRTTSample: func(rtt, rto time.Duration) { samples++ },
	}
	p := newPipe(t, cfg, 5*time.Millisecond)
	p.queueN(4)
	p.k.Run()
	p.assertInOrder(t, 4)
	if samples == 0 {
		t.Fatal("no RTT samples on a clean link")
	}
	if p.s.SRTT() != 10*time.Millisecond {
		t.Errorf("srtt = %v, want 10ms (constant 2x5ms round trip)", p.s.SRTT())
	}
	// rttvar decays on a jitter-free link, so the RTO settles at the
	// granularity-guarded floor: srtt plus one MinRTO of slack.
	if want := p.s.SRTT() + cfg.minRTO(); p.s.RTO() != want {
		t.Errorf("rto = %v, want srtt+MinRTO = %v", p.s.RTO(), want)
	}
}

func TestLossHalvesCwnd(t *testing.T) {
	var cuts int
	cfg := Config{
		Enabled: true, MTU: 1, CoalesceDelay: -1,
		InitialRTO: 20 * time.Millisecond, InitialCwnd: 8,
		OnCwnd: func(int) {},
	}
	cfg.OnRetransmit = func() { cuts++ }
	p := newPipe(t, cfg, 2*time.Millisecond)
	p.dropData[3] = true // lose one frame mid-window
	p.queueN(8)
	p.k.Run()
	p.assertInOrder(t, 8)
	if p.s.Retransmits == 0 {
		t.Fatal("expected at least one retransmission")
	}
	// After a single loss event the window must have been cut from its
	// pre-loss value and recovered by at most additive growth.
	if p.s.Cwnd() >= 8 {
		t.Errorf("cwnd = %v, want < 8 after a loss event", p.s.Cwnd())
	}
}

func TestFastRetransmitViaSacks(t *testing.T) {
	cfg := Config{
		Enabled: true, MTU: 1, CoalesceDelay: -1,
		InitialCwnd: 8, InitialRTO: time.Second, DupThresh: 3,
	}
	p := newPipe(t, cfg, 2*time.Millisecond)
	p.dropData[1] = true // lose the head; sacks for 2..8 must repair it
	p.queueN(8)
	p.k.Run()
	p.assertInOrder(t, 8)
	if p.s.FastRetransmits == 0 {
		t.Error("expected a sack-gap fast retransmission")
	}
	// The huge InitialRTO proves recovery came from the sack gap, not a
	// timeout: total time must be far below the RTO.
	if now := time.Duration(p.k.Now()); now >= time.Second {
		t.Errorf("recovery took %v, expected fast retransmit well under the 1s RTO", now)
	}
}

func TestMaxRetriesResetsLink(t *testing.T) {
	var droppedMsgs int
	cfg := Config{
		Enabled: true, MTU: 1, CoalesceDelay: -1,
		InitialRTO: 5 * time.Millisecond, MaxRetries: 3,
		OnReset: func(n int) { droppedMsgs += n },
	}
	p := newPipe(t, cfg, time.Millisecond)
	for i := 1; i <= 64; i++ {
		p.dropData[i] = true // black-hole the link
	}
	p.queueN(2)
	p.k.Run()
	if p.s.Resets != 1 {
		t.Fatalf("Resets = %d, want 1", p.s.Resets)
	}
	if droppedMsgs != 2 {
		t.Errorf("OnReset reported %d dropped messages, want 2", droppedMsgs)
	}
	if p.s.Epoch() != 1 {
		t.Errorf("epoch = %d, want 1 after reset", p.s.Epoch())
	}
	if p.s.Outstanding() != 0 || p.s.Backlog() != 0 {
		t.Errorf("link not empty after reset: outstanding=%d backlog=%d", p.s.Outstanding(), p.s.Backlog())
	}
	// The link works again on the new epoch.
	p.dropData = map[int]bool{}
	p.s.Queue(req(1))
	p.k.Run()
	if len(p.delivered) != 1 {
		t.Fatalf("delivered %d messages on the new epoch, want 1", len(p.delivered))
	}
}

func TestReceiverAdoptsNewEpoch(t *testing.T) {
	r := NewReceiver(Config{Enabled: true})
	if _, _, ok := r.Accept(msg.WtpData{Epoch: 0, Seq: 1, Inner: []msg.Message{req(1)}}); !ok {
		t.Fatal("epoch-0 frame rejected")
	}
	// A frame from a newer epoch resets receiver state.
	deliver, ack, ok := r.Accept(msg.WtpData{Epoch: 2, Seq: 1, Inner: []msg.Message{req(9)}})
	if !ok || len(deliver) != 1 {
		t.Fatalf("new-epoch frame not delivered: ok=%v deliver=%d", ok, len(deliver))
	}
	if ack.Epoch != 2 || ack.Cum != 1 {
		t.Errorf("ack = %+v, want epoch 2 cum 1", ack)
	}
	// Frames from the dead epoch are ignored without an ack.
	if _, _, ok := r.Accept(msg.WtpData{Epoch: 0, Seq: 2}); ok {
		t.Error("dead-epoch frame accepted")
	}
}

func TestReceiverReordersAndSacks(t *testing.T) {
	r := NewReceiver(Config{Enabled: true})
	// Frames 2 and 3 arrive before 1.
	deliver, ack, _ := r.Accept(msg.WtpData{Seq: 2, Inner: []msg.Message{req(2)}})
	if len(deliver) != 0 {
		t.Fatalf("out-of-order frame delivered early")
	}
	if ack.Cum != 0 || len(ack.Sacks) != 1 || ack.Sacks[0] != 2 {
		t.Fatalf("ack = %+v, want cum 0 sacks [2]", ack)
	}
	_, ack, _ = r.Accept(msg.WtpData{Seq: 3, Inner: []msg.Message{req(3)}})
	if len(ack.Sacks) != 2 || ack.Sacks[0] != 2 || ack.Sacks[1] != 3 {
		t.Fatalf("ack = %+v, want sacks [2 3]", ack)
	}
	deliver, ack, _ = r.Accept(msg.WtpData{Seq: 1, Inner: []msg.Message{req(1)}})
	if len(deliver) != 3 {
		t.Fatalf("filling the hole delivered %d messages, want 3", len(deliver))
	}
	if ack.Cum != 3 || len(ack.Sacks) != 0 {
		t.Errorf("ack = %+v, want cum 3 no sacks", ack)
	}
}

func TestReceiverDropsDuplicates(t *testing.T) {
	r := NewReceiver(Config{Enabled: true})
	f := msg.WtpData{Seq: 1, Inner: []msg.Message{req(1)}}
	deliver, _, _ := r.Accept(f)
	if len(deliver) != 1 {
		t.Fatal("first copy not delivered")
	}
	deliver, ack, ok := r.Accept(f)
	if !ok || len(deliver) != 0 {
		t.Fatalf("duplicate redelivered: ok=%v deliver=%d", ok, len(deliver))
	}
	if ack.Cum != 1 {
		t.Errorf("duplicate must still re-ack: cum = %d, want 1", ack.Cum)
	}
	if r.Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1", r.Duplicates)
	}
	// A buffered-ahead duplicate counts too, and an empty frame must
	// still advance the watermark (presence beats payload).
	r.Accept(msg.WtpData{Seq: 3})
	r.Accept(msg.WtpData{Seq: 3})
	if r.Duplicates != 2 {
		t.Errorf("Duplicates = %d, want 2", r.Duplicates)
	}
	deliver, ack, _ = r.Accept(msg.WtpData{Seq: 2, Inner: []msg.Message{req(2)}})
	if len(deliver) != 1 || ack.Cum != 3 {
		t.Errorf("empty frame wedged the watermark: deliver=%d cum=%d, want 1/3", len(deliver), ack.Cum)
	}
}

func TestLossyLinkDeliversEverythingInOrder(t *testing.T) {
	cfg := Config{Enabled: true, MTU: 1, CoalesceDelay: -1, InitialRTO: 30 * time.Millisecond}
	p := newPipe(t, cfg, 2*time.Millisecond)
	// Deterministic ~20% pattern across both directions.
	for i := 1; i <= 400; i += 5 {
		p.dropData[i] = true
		p.dropAcks[i] = true
	}
	p.queueN(100)
	p.k.Run()
	p.assertInOrder(t, 100)
	if p.s.Outstanding() != 0 || p.s.Backlog() != 0 {
		t.Errorf("link not drained: outstanding=%d backlog=%d", p.s.Outstanding(), p.s.Backlog())
	}
}

func TestWindowedBeatsStopAndWaitGoodput(t *testing.T) {
	run := func(cfg Config) time.Duration {
		p := newPipe(t, cfg, 10*time.Millisecond)
		for i := 1; i <= 1000; i += 10 { // 10% deterministic data loss
			p.dropData[i] = true
		}
		p.queueN(200)
		p.k.Run()
		p.assertInOrder(t, 200)
		return time.Duration(p.k.Now())
	}
	windowed := run(Config{Enabled: true, MTU: 1, CoalesceDelay: -1, InitialRTO: 60 * time.Millisecond})
	stopwait := run(Config{Enabled: true, Window: 1, MTU: 1, CoalesceDelay: -1, InitialRTO: 60 * time.Millisecond})
	if stopwait < 2*windowed {
		t.Errorf("windowed=%v stop-and-wait=%v: want >=2x speedup at 10%% loss", windowed, stopwait)
	}
}
