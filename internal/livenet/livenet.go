// Package livenet provides a wall-clock sim.Scheduler backed by real
// goroutines: timers fire on real time and all callbacks are serialized
// on one dispatcher goroutine, preserving the single-threaded execution
// model the protocol state machines assume.
//
// The paper's authors prototyped RDP as communicating Linux processes;
// this runtime is the equivalent demonstration that the protocol code
// in this repository is a real concurrent implementation and not only a
// simulation artifact — the same rdpcore state machines run unchanged on
// either scheduler. The deterministic kernel remains the substrate for
// every experiment.
package livenet

import (
	"container/heap"
	"sync"
	"time"

	"repro/internal/sim"
)

// Runtime is a live scheduler. Create with New, start with Start, and
// interact from other goroutines only through Do/Post. Stop waits for
// the dispatcher to drain.
//
// Timers run through the runtime's own deadline heap rather than
// individual time.AfterFunc timers: Go runtime timers with near-equal
// deadlines may fire in either order, but protocol code depends on two
// messages sent back-to-back with equal link latency arriving in send
// order (e.g. a join before the request that follows it). The heap
// orders callbacks by (deadline, insertion), exactly like the
// simulation kernel.
type Runtime struct {
	start time.Time
	rng   *sim.RNG

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []func()
	stopped bool
	done    chan struct{}
	started bool

	tmu        sync.Mutex
	timers     timerHeap
	nextSeq    uint64
	timerWake  chan struct{}
	timerDone  chan struct{}
	timerQuit  chan struct{}
	timerAlive bool
}

// New returns a runtime seeded with seed. The clock starts at New.
func New(seed int64) *Runtime {
	r := &Runtime{
		start:     time.Now(),
		rng:       sim.NewRNG(seed),
		done:      make(chan struct{}),
		timerWake: make(chan struct{}, 1),
		timerDone: make(chan struct{}),
		timerQuit: make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// liveEvent is one scheduled callback.
type liveEvent struct {
	at       time.Time
	seq      uint64
	fn       func()
	canceled bool
	index    int
}

// timerHeap orders events by (deadline, insertion sequence).
type timerHeap []*liveEvent

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	e := x.(*liveEvent)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Now implements sim.Scheduler: wall-clock time since New.
func (r *Runtime) Now() sim.Time { return sim.Time(time.Since(r.start)) }

// RNG implements sim.Scheduler. The source is not locked; access it only
// from scheduler callbacks (or before Start), like all protocol state.
func (r *Runtime) RNG() *sim.RNG { return r.rng }

// liveTimer adapts a heap event to sim.Canceler.
type liveTimer struct {
	r *Runtime
	e *liveEvent
}

// Cancel implements sim.Canceler.
func (lt liveTimer) Cancel() bool {
	lt.r.tmu.Lock()
	defer lt.r.tmu.Unlock()
	if lt.e.canceled || lt.e.index == -1 {
		return false
	}
	lt.e.canceled = true
	return true
}

// After implements sim.Scheduler: fn is posted to the dispatcher when
// the real-time delay elapses. Callbacks with equal deadlines run in
// scheduling order.
func (r *Runtime) After(delay time.Duration, fn func()) sim.Canceler {
	if fn == nil {
		panic("livenet: nil callback")
	}
	if delay < 0 {
		delay = 0
	}
	e := &liveEvent{at: time.Now().Add(delay), fn: fn}
	r.tmu.Lock()
	e.seq = r.nextSeq
	r.nextSeq++
	heap.Push(&r.timers, e)
	r.tmu.Unlock()
	select {
	case r.timerWake <- struct{}{}:
	default:
	}
	return liveTimer{r: r, e: e}
}

// Defer implements sim.Scheduler: like After without a cancellation
// handle. The live runtime has no free list — wall-clock scheduling is
// not a hot path — so this simply drops the handle.
func (r *Runtime) Defer(delay time.Duration, fn func()) {
	r.After(delay, fn)
}

// timerLoop pops due events in (deadline, seq) order and posts them to
// the dispatcher.
func (r *Runtime) timerLoop() {
	defer close(r.timerDone)
	t := time.NewTimer(time.Hour)
	defer t.Stop()
	for {
		r.tmu.Lock()
		var wait time.Duration = time.Hour
		var due []*liveEvent
		now := time.Now()
		for len(r.timers) > 0 {
			e := r.timers[0]
			if e.canceled {
				heap.Pop(&r.timers)
				continue
			}
			if e.at.After(now) {
				wait = e.at.Sub(now)
				break
			}
			heap.Pop(&r.timers)
			due = append(due, e)
		}
		r.tmu.Unlock()
		for _, e := range due {
			r.Post(e.fn)
		}
		if !t.Stop() {
			select {
			case <-t.C:
			default:
			}
		}
		t.Reset(wait)
		select {
		case <-t.C:
		case <-r.timerWake:
		case <-r.timerQuit:
			return
		}
	}
}

// Post enqueues fn for serialized execution. Safe from any goroutine.
// Posts after Stop are dropped.
func (r *Runtime) Post(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return
	}
	r.queue = append(r.queue, fn)
	r.cond.Signal()
}

// Do runs fn on the dispatcher and waits for it to finish — the way
// external goroutines (driver code, tests) interact with protocol state.
// Calling Do from inside a callback would deadlock; callbacks already
// run on the dispatcher and can act directly.
func (r *Runtime) Do(fn func()) {
	doneCh := make(chan struct{})
	r.Post(func() {
		defer close(doneCh)
		fn()
	})
	select {
	case <-doneCh:
	case <-r.done:
	}
}

// Start launches the dispatcher goroutine. It may be called once.
func (r *Runtime) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		panic("livenet: Start called twice")
	}
	r.started = true
	r.timerAlive = true
	r.mu.Unlock()
	go r.loop()
	go r.timerLoop()
}

func (r *Runtime) loop() {
	defer close(r.done)
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.stopped {
			r.cond.Wait()
		}
		if r.stopped && len(r.queue) == 0 {
			r.mu.Unlock()
			return
		}
		fn := r.queue[0]
		r.queue = r.queue[1:]
		r.mu.Unlock()
		fn()
	}
}

// Stop drains the queue and stops the dispatcher. Pending timers that
// fire afterwards are dropped. Safe to call once, from outside the
// dispatcher.
func (r *Runtime) Stop() {
	r.mu.Lock()
	if !r.started || r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.cond.Signal()
	alive := r.timerAlive
	r.timerAlive = false
	r.mu.Unlock()
	if alive {
		close(r.timerQuit)
		<-r.timerDone
	}
	<-r.done
}

var _ sim.Scheduler = (*Runtime)(nil)
