package livenet

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
)

func TestAfterFiresSerialized(t *testing.T) {
	r := New(1)
	r.Start()
	defer r.Stop()

	var mu int32 // guarded by the serialization property itself
	var order []int
	done := make(chan struct{})
	for i := 0; i < 10; i++ {
		i := i
		r.After(time.Duration(i)*2*time.Millisecond, func() {
			if atomic.AddInt32(&mu, 1) != 1 {
				t.Error("callbacks ran concurrently")
			}
			order = append(order, i)
			atomic.AddInt32(&mu, -1)
			if len(order) == 10 {
				close(done)
			}
		})
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("callbacks did not complete")
	}
}

func TestCancel(t *testing.T) {
	r := New(1)
	r.Start()
	defer r.Stop()
	fired := make(chan struct{}, 1)
	c := r.After(50*time.Millisecond, func() { fired <- struct{}{} })
	if !c.Cancel() {
		t.Error("Cancel reported false for a pending timer")
	}
	select {
	case <-fired:
		t.Error("cancelled timer fired")
	case <-time.After(120 * time.Millisecond):
	}
}

func TestDoRunsOnDispatcher(t *testing.T) {
	r := New(1)
	r.Start()
	defer r.Stop()
	ran := false
	r.Do(func() { ran = true })
	if !ran {
		t.Error("Do did not run the callback")
	}
}

func TestStopDropsLatePosts(t *testing.T) {
	r := New(1)
	r.Start()
	r.Stop()
	r.Post(func() { t.Error("post after Stop executed") })
	time.Sleep(20 * time.Millisecond)
}

func TestNowAdvances(t *testing.T) {
	r := New(1)
	a := r.Now()
	time.Sleep(5 * time.Millisecond)
	if b := r.Now(); b <= a {
		t.Errorf("Now did not advance: %v then %v", a, b)
	}
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil callback must panic")
		}
	}()
	New(1).After(time.Millisecond, nil)
}

// TestRDPWorldRunsLive runs the unchanged rdpcore protocol stack on the
// live runtime: a request is issued, the MH migrates mid-flight, and the
// result still arrives — in real milliseconds, on goroutines.
func TestRDPWorldRunsLive(t *testing.T) {
	rt := New(7)
	cfg := rdpcore.DefaultConfig()
	cfg.NumMSS = 3
	cfg.WiredLatency = netsim.Constant(2 * time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(3 * time.Millisecond)
	cfg.ServerProc = netsim.Constant(40 * time.Millisecond)
	w := rdpcore.NewWorldOn(rt, cfg)
	rt.Start()
	defer rt.Stop()

	var (
		mh  *rdpcore.MHNode
		req ids.RequestID
	)
	delivered := make(chan struct{}, 1)
	rt.Do(func() {
		mh = w.AddMH(1, 1)
		mh.OnResult(func(_ ids.RequestID, _ []byte, dup bool) {
			if !dup {
				delivered <- struct{}{}
			}
		})
		req = mh.IssueRequest(1, []byte("live"))
	})
	// Migrate while the server is processing.
	time.Sleep(15 * time.Millisecond)
	rt.Do(func() { w.Migrate(1, 2) })

	select {
	case <-delivered:
	case <-time.After(5 * time.Second):
		t.Fatal("result not delivered on the live runtime")
	}
	rt.Do(func() {
		if !mh.Seen(req) {
			t.Error("Seen(req) false after delivery")
		}
		if got := w.Stats.Handoffs.Value(); got != 1 {
			t.Errorf("Handoffs = %d, want 1", got)
		}
		if err := w.CheckInvariants(); err != nil {
			t.Error(err)
		}
	})
}

// TestRunUntilPanicsOnLiveWorld documents that live worlds cannot be
// stepped like simulations.
func TestRunUntilPanicsOnLiveWorld(t *testing.T) {
	rt := New(1)
	w := rdpcore.NewWorldOn(rt, rdpcore.DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("RunUntil on a live world must panic")
		}
	}()
	w.RunUntil(time.Second)
}

func TestEqualDeadlineOrdering(t *testing.T) {
	// Two callbacks scheduled back-to-back with the same delay must run
	// in scheduling order — the property Go's runtime timers do not
	// guarantee and protocol code depends on (a join must precede the
	// request sent right after it). This is the regression test for the
	// runtime's ordered timer heap.
	for trial := 0; trial < 20; trial++ {
		r := New(int64(trial))
		r.Start()
		var order []int
		done := make(chan struct{})
		const n = 50
		for i := 0; i < n; i++ {
			i := i
			r.After(5*time.Millisecond, func() {
				order = append(order, i)
				if len(order) == n {
					close(done)
				}
			})
		}
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("callbacks did not complete")
		}
		r.Stop()
		for i, got := range order {
			if got != i {
				t.Fatalf("trial %d: equal-deadline callbacks reordered: %v", trial, order)
			}
		}
	}
}

// TestLiveRandomSoak runs a small randomized workload on the live
// runtime under the race detector: concurrent timers, external Do calls
// and the full protocol stack must stay data-race free and deliver
// everything.
func TestLiveRandomSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock soak")
	}
	rt := New(11)
	cfg := rdpcore.DefaultConfig()
	cfg.NumMSS = 4
	cfg.NumServers = 2
	cfg.WiredLatency = netsim.Constant(time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(2 * time.Millisecond)
	cfg.ServerProc = netsim.Constant(10 * time.Millisecond)
	w := rdpcore.NewWorldOn(rt, cfg)

	// Setup happens before Start (the scheduler is not yet dispatching).
	hosts := make([]*rdpcore.MHNode, 0, 4)
	for i := 1; i <= 4; i++ {
		hosts = append(hosts, w.AddMH(ids.MH(i), ids.MSS(i%4+1)))
	}
	rt.Start()
	defer rt.Stop()

	var reqs []ids.RequestID
	// External goroutine drives ops through Do, racing the dispatcher.
	for round := 0; round < 30; round++ {
		round := round
		rt.Do(func() {
			id := ids.MH(round%4 + 1)
			switch round % 5 {
			case 0:
				w.Migrate(id, ids.MSS(round%4+1))
			case 1:
				w.SetActive(id, round%2 == 0)
			default:
				reqs = append(reqs, hosts[round%4].IssueRequest(ids.Server(round%2+1), []byte("r")))
			}
		})
		time.Sleep(3 * time.Millisecond)
	}
	// Wake everyone and drain.
	rt.Do(func() {
		for i := 1; i <= 4; i++ {
			w.SetActive(ids.MH(i), true)
		}
	})
	time.Sleep(300 * time.Millisecond)

	rt.Do(func() {
		for _, r := range reqs {
			if !w.MHs[r.Origin].Seen(r) {
				t.Errorf("%v undelivered on the live runtime", r)
			}
		}
		if err := w.CheckInvariants(); err != nil {
			t.Error(err)
		}
		if got := w.Stats.Violations.Value(); got != 0 {
			t.Errorf("Violations = %d", got)
		}
	})
}
