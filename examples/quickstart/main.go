// Quickstart: one mobile host, one server, one migration.
//
// The host issues a request from cell 1, drives into cell 2 while the
// server is still working, and receives the result there — the headline
// guarantee of the Result Delivery Protocol. A trace of every message
// is printed so the proxy machinery (hand-off, update_currentLoc,
// del-proxy) can be watched end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	rdp "repro"
)

func main() {
	rec := rdp.NewTrace()
	cfg := rdp.DefaultConfig()
	cfg.Observer = rec.Observe

	world := rdp.NewWorld(cfg)
	mh := world.AddMH(1, 1) // join the system in cell 1

	var req rdp.RequestID
	world.Schedule(0, func() {
		req = mh.IssueRequest(1, []byte("what is the answer?"))
		fmt.Printf("t=0: issued %v from cell %v\n", req, world.Location(1))
	})
	// The server needs 150ms; migrate to cell 2 after 60ms, mid-request.
	world.Schedule(60*time.Millisecond, func() {
		world.Migrate(1, 2)
		fmt.Println("t=60ms: migrated to cell 2 while the request is pending")
	})
	mh.OnResult(func(r rdp.RequestID, payload []byte, dup bool) {
		fmt.Printf("t=%v: result of %v delivered in cell %v: %q\n",
			time.Duration(world.Kernel.Now()).Round(time.Millisecond), r, world.Location(1), payload)
	})

	world.RunUntil(2 * time.Second)

	fmt.Println("\nmessage trace:")
	for _, e := range rec.Deliveries() {
		fmt.Println("  ", e)
	}
	fmt.Printf("\ndelivered=%v retransmissions=%d hand-offs=%d proxies created=%d deleted=%d\n",
		mh.Seen(req), world.Stats.Retransmissions.Value(), world.Stats.Handoffs.Value(),
		world.Stats.ProxiesCreated.Value(), world.Stats.ProxiesDeleted.Value())
}
