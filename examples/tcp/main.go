// TCP prototype: the protocol stack over real loopback sockets.
//
// The paper's authors planned to evaluate RDP as "distributed processes
// ... within a Linux network". This example is that deployment: every
// support station and server opens its own TCP endpoint on 127.0.0.1,
// protocol messages travel as length-prefixed binary frames (the same
// codec the simulator checks against the paper's figures), wired frames
// carry causal stamps, and the unchanged state machines run on a live
// goroutine runtime. A host issues requests and migrates between cells
// while results are in flight; the proxy chases it over real sockets.
//
//	go run ./examples/tcp
package main

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	rdp "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tcp example:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := rdp.DefaultConfig()
	cfg.NumMSS = 3
	cfg.NumServers = 1
	cfg.ServerProc = rdp.Constant(120 * time.Millisecond)

	rt := rdp.NewLiveRuntime(1)
	world, net, err := rdp.NewTCPWorld(rt, cfg)
	if err != nil {
		return err
	}
	defer net.Close()

	fmt.Println("endpoints (each a real TCP listener on loopback):")
	for i := 1; i <= cfg.NumMSS; i++ {
		fmt.Printf("  mss%d  %s\n", i, net.Addr(rdp.MSS(i).Node()))
	}
	fmt.Printf("  srv1  %s\n\n", net.Addr(rdp.Server(1).Node()))

	rt.Start()
	defer rt.Stop()

	var delivered atomic.Int32
	start := time.Now()
	rt.Do(func() {
		mh := world.AddMH(1, 1)
		mh.OnResult(func(r rdp.RequestID, payload []byte, dup bool) {
			if dup {
				return
			}
			delivered.Add(1)
			fmt.Printf("t=%-6v result %v delivered in cell %v over TCP: %q\n",
				time.Since(start).Round(time.Millisecond), r, world.Location(1), payload)
		})
	})

	// Issue three requests; migrate between cells while they compute.
	for i, q := range []string{"traffic on A1?", "route to airport?", "parking downtown?"} {
		i, q := i, q
		rt.Do(func() {
			req := world.MHs[1].IssueRequest(1, []byte(q))
			fmt.Printf("t=%-6v issued %v from cell %v: %q\n",
				time.Since(start).Round(time.Millisecond), req, world.Location(1), q)
		})
		time.Sleep(40 * time.Millisecond)
		next := rdp.MSS(i%3 + 2)
		if next > 3 {
			next = 1
		}
		rt.Do(func() {
			world.Migrate(1, next)
			fmt.Printf("t=%-6v migrated to cell %v (hand-off over TCP)\n",
				time.Since(start).Round(time.Millisecond), next)
		})
	}

	deadline := time.Now().Add(10 * time.Second)
	for delivered.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}

	var invErr error
	rt.Do(func() { invErr = world.CheckInvariants() })
	if invErr != nil {
		return invErr
	}
	if delivered.Load() != 3 {
		return fmt.Errorf("only %d of 3 results delivered", delivered.Load())
	}
	ws := net.Stats()
	fmt.Printf("\nall 3 results delivered across %d hand-offs; invariants hold\n",
		world.Stats.Handoffs.Value())
	fmt.Printf("wire traffic: %d wired frames (%d B, causal stamps included), %d radio frames (%d B)\n",
		ws.WiredFrames, ws.WiredBytes, ws.WirelessFrames, ws.WirelessBytes)
	return nil
}
