// Command chaos demonstrates experiment E10's machinery through the
// public API: a lossy, partition-prone backbone with a station crash,
// countered by the wired ARQ and checkpoint recovery.
package main

import (
	"fmt"
	"time"

	rdp "repro"
)

func main() {
	cfg := rdp.DefaultConfig()
	cfg.WiredARQ = rdp.ARQConfig{Enabled: true, RTO: 30 * time.Millisecond}
	cfg.Checkpoint = true
	cfg.RecoveryGrace = 200 * time.Millisecond
	cfg.ServerProc = rdp.Constant(300 * time.Millisecond)
	w, inj := rdp.NewFaultedWorld(cfg, rdp.FaultPlan{
		Default: rdp.LinkFaults{DropProb: 0.2, DupProb: 0.05},
		Crashes: []rdp.Crash{{MSS: 1, At: 100 * time.Millisecond, RestartAt: 500 * time.Millisecond}},
	})
	mh := w.AddMH(1, 1)
	var req rdp.RequestID
	w.Schedule(0, func() { req = mh.IssueRequest(1, []byte("through the storm")) })
	w.RunUntil(5 * time.Second)
	fmt.Printf("delivered=%v injected drops=%d dups=%d crashes=%d checkpoint writes=%d\n",
		mh.Seen(req), inj.Stats.Drops.Value(), inj.Stats.Dups.Value(),
		w.Stats.MSSCrashes.Value(), w.CheckpointWrites())
}
