// Traffic: the SIDAM scenario that motivated RDP (paper §1).
//
// A driver crosses São Paulo — cell to cell — querying the distributed
// Traffic Information Service about the regions ahead, while a traffic
// engineering helicopter feeds congestion updates. Queries entered at
// any TIS are routed through the server ring to the owning TIS; the
// replies chase the moving driver through the proxy.
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"time"

	rdp "repro"
)

func main() {
	cfg := rdp.DefaultConfig()
	cfg.NumMSS = 6     // six cells along the driver's route
	cfg.NumServers = 4 // four Traffic Information Servers
	world := rdp.NewWorld(cfg)
	net := rdp.InstallSidam(world, rdp.SidamConfig{
		Regions:           24,
		LocalProc:         rdp.Constant(40 * time.Millisecond),
		HopProc:           rdp.Constant(10 * time.Millisecond),
		InitialCongestion: 70,
	})

	driver := world.AddMH(1, 1)
	heli := world.AddMH(2, 6) // the helicopter hovers in cell 6

	driver.OnResult(func(_ rdp.RequestID, payload []byte, dup bool) {
		if dup {
			return
		}
		r, err := rdp.ParseReading(payload)
		if err != nil {
			return
		}
		fmt.Printf("t=%-6v driver (cell %v): region %2d congestion %3d%%\n",
			time.Duration(world.Kernel.Now()).Round(time.Millisecond), world.Location(1), r.Region, r.Congestion)
	})

	// The driver's route: one cell every 2s, querying the region ahead
	// just before each move.
	entry := net.TISList()[0]
	for leg := 0; leg < 5; leg++ {
		leg := leg
		world.Schedule(time.Duration(leg)*2*time.Second+500*time.Millisecond, func() {
			region := uint32((leg*4 + 7) % 24)
			driver.IssueRequest(entry, rdp.QueryPayload(region))
		})
		world.Schedule(time.Duration(leg+1)*2*time.Second, func() {
			world.Migrate(1, rdp.MSS(leg+2))
			fmt.Printf("t=%-6v driver entered cell %d\n",
				time.Duration(world.Kernel.Now()).Round(time.Millisecond), leg+2)
		})
	}

	// The helicopter reports worsening congestion in region 11.
	for i := 0; i < 4; i++ {
		i := i
		world.Schedule(time.Duration(i)*2500*time.Millisecond+time.Second, func() {
			heli.IssueRequest(entry, rdp.UpdatePayload(11, int32(40+i*15)))
		})
	}
	// The driver checks region 11 near the end of the trip.
	world.Schedule(9*time.Second, func() {
		driver.IssueRequest(entry, rdp.QueryPayload(11))
	})

	world.RunUntil(15 * time.Second)

	fmt.Printf("\nqueries=%d updates=%d remote-ops=%d inter-TIS hops=%d; deliveries=%d duplicates=%d\n",
		net.Stats.Queries.Value(), net.Stats.Updates.Value(),
		net.Stats.RemoteOps.Value(), net.Stats.HopsTotal.Value(),
		world.Stats.ResultsDelivered.Value(), world.Stats.DuplicateDeliveries.Value())
}
