// Subscribe: asynchronous notifications to a moving subscriber
// (paper §1, §3).
//
// A commuter subscribes to congestion alerts for the region around home,
// then drives across town, parks, and turns the device off for a while.
// Meanwhile traffic staff feed updates; each threshold-crossing change
// fires a notification that RDP delivers wherever (and whenever) the
// commuter can next receive — including the one that waits out the
// power-off.
//
//	go run ./examples/subscribe
package main

import (
	"fmt"
	"time"

	rdp "repro"
)

const homeRegion = 5

func main() {
	cfg := rdp.DefaultConfig()
	cfg.NumMSS = 4
	cfg.NumServers = 3
	world := rdp.NewWorld(cfg)
	net := rdp.InstallSidam(world, rdp.SidamConfig{
		Regions:           12,
		LocalProc:         rdp.Constant(25 * time.Millisecond),
		HopProc:           rdp.Constant(8 * time.Millisecond),
		InitialCongestion: 0,
	})

	commuter := world.AddMH(1, 1)
	staff := world.AddMH(2, 4)
	entry := net.TISList()[0]

	now := func() time.Duration { return time.Duration(world.Kernel.Now()).Round(time.Millisecond) }

	// Re-subscribe after every notification for a continuous feed.
	var resubscribe func()
	resubscribe = func() {
		commuter.IssueRequest(entry, rdp.SubscribePayload(homeRegion, 25))
	}
	received := 0
	commuter.OnResult(func(_ rdp.RequestID, payload []byte, dup bool) {
		if dup {
			return
		}
		received++
		r, err := rdp.ParseReading(payload)
		if err != nil {
			return
		}
		fmt.Printf("t=%-7v ALERT at cell %v (active=%t): region %d congestion now %d%%\n",
			now(), world.Location(1), world.IsActive(1), r.Region, r.Congestion)
		world.Schedule(0, resubscribe)
	})
	world.Schedule(0, resubscribe)

	// The commute: cells 1 -> 2 -> 3, then parked and powered off.
	world.Schedule(2*time.Second, func() { world.Migrate(1, 2); fmt.Printf("t=%-7v commuter in cell 2\n", now()) })
	world.Schedule(4*time.Second, func() { world.Migrate(1, 3); fmt.Printf("t=%-7v commuter in cell 3\n", now()) })
	world.Schedule(6*time.Second, func() {
		world.SetActive(1, false)
		fmt.Printf("t=%-7v commuter powered off\n", now())
	})
	world.Schedule(11*time.Second, func() {
		world.SetActive(1, true)
		fmt.Printf("t=%-7v commuter powered on again\n", now())
	})

	// Staff updates: two threshold-crossing jumps — one while driving,
	// one while the device is off.
	for i, update := range []struct {
		at    time.Duration
		value int32
	}{
		{1 * time.Second, 10},  // small: no alert
		{3 * time.Second, 45},  // +35: alert while driving
		{8 * time.Second, 90},  // +45: alert fired while powered off
		{13 * time.Second, 95}, // +5: no alert
	} {
		u := update
		_ = i
		world.Schedule(u.at, func() {
			staff.IssueRequest(entry, rdp.UpdatePayload(homeRegion, u.value))
			fmt.Printf("t=%-7v staff set region %d to %d%%\n", now(), homeRegion, u.value)
		})
	}

	world.RunUntil(20 * time.Second)

	fmt.Printf("\nnotifications fired=%d received=%d retransmissions=%d (the power-off alert waited for reactivation)\n",
		net.Stats.Notifications.Value(), received, world.Stats.Retransmissions.Value())
}
