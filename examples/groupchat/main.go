// Groupchat: the multicast operation of paper §1 ("the user provides
// ... the identification of a group of users (previously configured)
// and a message to be sent to the group").
//
// A dispatcher messages a pre-configured group of field units. Each
// unit keeps a mailbox request parked through its RDP proxy; the
// group's owning TIS serializes every message, so all units read the
// feed in the same order — while driving between cells and occasionally
// powering down. A message sent while a unit sleeps waits in its
// mailbox and arrives right after wake-up.
//
//	go run ./examples/groupchat
package main

import (
	"fmt"
	"time"

	rdp "repro"
)

const fleetGroup = 7

func main() {
	cfg := rdp.DefaultConfig()
	cfg.NumMSS = 4
	cfg.NumServers = 3
	world := rdp.NewWorld(cfg)
	net := rdp.InstallSidam(world, rdp.SidamConfig{Regions: 12, InitialCongestion: 0})

	now := func() time.Duration { return time.Duration(world.Kernel.Now()).Round(time.Millisecond) }
	entry := net.TISList()[0]

	// Three field units, each re-parking its mailbox after every message.
	unitNames := map[rdp.MH]string{1: "unit-alpha", 2: "unit-bravo", 3: "unit-charlie"}
	for id := rdp.MH(1); id <= 3; id++ {
		id := id
		mh := world.AddMH(id, rdp.MSS(id))
		park := func() { mh.IssueRequest(entry, rdp.MailboxPayload()) }
		mh.OnResult(func(_ rdp.RequestID, payload []byte, dup bool) {
			if dup {
				return
			}
			if _, seq, data, err := rdp.ParseGroupMsg(payload); err == nil {
				fmt.Printf("t=%-7v %s (cell %v) got #%d: %q\n",
					now(), unitNames[id], world.Location(id), seq, data)
				world.Schedule(0, park)
			}
		})
		world.Schedule(0, park)
	}
	net.ConfigureGroup(fleetGroup, []rdp.MH{1, 2, 3})

	dispatcher := world.AddMH(9, 4)
	send := func(at time.Duration, text string) {
		world.Schedule(at, func() {
			dispatcher.IssueRequest(entry, rdp.MulticastPayload(fleetGroup, []byte(text)))
			fmt.Printf("t=%-7v dispatcher: %q\n", now(), text)
		})
	}

	send(500*time.Millisecond, "assemble at region 4")
	// unit-bravo drives to another cell; unit-charlie powers down.
	world.Schedule(1*time.Second, func() {
		world.Migrate(2, 4)
		fmt.Printf("t=%-7v unit-bravo moved to cell 4\n", now())
	})
	world.Schedule(1200*time.Millisecond, func() {
		world.SetActive(3, false)
		fmt.Printf("t=%-7v unit-charlie powered down\n", now())
	})
	send(2*time.Second, "congestion clearing, hold position")
	send(3*time.Second, "dismissed")
	world.Schedule(5*time.Second, func() {
		world.SetActive(3, true)
		fmt.Printf("t=%-7v unit-charlie powered up\n", now())
	})

	world.RunUntil(15 * time.Second)

	fmt.Printf("\nmulticasts=%d deliveries=%d parks=%d retransmissions=%d\n",
		net.Stats.Multicasts.Value(), net.Stats.GroupDeliveries.Value(),
		net.Stats.MailboxParks.Value(), world.Stats.Retransmissions.Value())
}
