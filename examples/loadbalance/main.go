// Loadbalance: why a dynamic proxy beats a fixed home agent (paper §4).
//
// The same population of roaming hosts runs the same request workload
// under RDP and under a Mobile IP-style baseline whose home agents all
// sit on one station (a typical operator assignment). The example prints
// a per-station load histogram for both: RDP's forwarding work follows
// the users across stations, Mobile IP's funnels through the home agent.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"strings"
	"time"

	rdp "repro"
)

const (
	hosts   = 12
	cells   = 6
	runFor  = 30 * time.Second
	reqGap  = 600 * time.Millisecond
	moveGap = 1500 * time.Millisecond
)

func main() {
	fmt.Printf("%d hosts roam %d cells for %v, one request every %v\n\n", hosts, cells, runFor, reqGap)

	rdpLoads := runRDP()
	printHistogram("RDP — result forwards per proxy-hosting station", rdpLoads)

	mipLoads := runMobileIP()
	printHistogram("Mobile IP — datagrams tunneled per station (homes at mss1)", mipLoads)

	fmt.Printf("Jain fairness index: RDP %.3f vs Mobile IP %.3f (1.0 = perfectly even)\n",
		rdp.JainIndex(rdpLoads), rdp.JainIndex(mipLoads))
}

func runRDP() []float64 {
	cfg := rdp.DefaultConfig()
	cfg.NumMSS = cells
	world := rdp.NewWorld(cfg)
	stations := world.StationList()
	for i := 1; i <= hosts; i++ {
		id := rdp.MH(i)
		rng := world.Kernel.RNG().Fork()
		mh := world.AddMH(id, stations[rng.Intn(len(stations))])
		scheduleRoaming(rng, stations,
			func(at time.Duration, cell rdp.MSS) { world.Schedule(at, func() { world.Migrate(id, cell) }) },
			func(at time.Duration) { world.Schedule(at, func() { mh.IssueRequest(1, []byte("q")) }) })
	}
	world.RunUntil(runFor + 10*time.Second)
	return world.Stats.ForwardLoads(stations)
}

func runMobileIP() []float64 {
	cfg := rdp.DefaultMobileIPConfig()
	cfg.NumMSS = cells
	world := rdp.NewMobileIPWorld(cfg)
	stations := world.StationList()
	for i := 1; i <= hosts; i++ {
		id := rdp.MH(i)
		rng := world.Kernel.RNG().Fork()
		mn := world.AddMH(id, stations[rng.Intn(len(stations))], 1 /* shared home */)
		scheduleRoaming(rng, stations,
			func(at time.Duration, cell rdp.MSS) { world.Kernel.After(at, func() { world.Migrate(id, cell) }) },
			func(at time.Duration) { world.Kernel.After(at, func() { mn.IssueRequest(1, []byte("q")) }) })
	}
	world.RunUntil(runFor + 10*time.Second)
	out := make([]float64, 0, len(stations))
	for _, st := range stations {
		out = append(out, float64(world.Stats.TunnelLoad[st]))
	}
	return out
}

// scheduleRoaming drives one host: a migration every ~moveGap and a
// request every ~reqGap, both jittered.
func scheduleRoaming(rng *rdp.RNG, stations []rdp.MSS,
	migrate func(at time.Duration, cell rdp.MSS), request func(at time.Duration)) {
	for at := time.Duration(0); at < runFor; at += moveGap {
		jitter := time.Duration(rng.Intn(int(moveGap / 2)))
		cell := stations[rng.Intn(len(stations))]
		migrate(at+jitter, cell)
	}
	for at := reqGap; at < runFor; at += reqGap {
		jitter := time.Duration(rng.Intn(int(reqGap / 2)))
		request(at + jitter)
	}
}

func printHistogram(title string, loads []float64) {
	fmt.Println(title)
	max := 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	for i, l := range loads {
		bar := 0
		if max > 0 {
			bar = int(l / max * 50)
		}
		fmt.Printf("  mss%-2d %6.0f %s\n", i+1, l, strings.Repeat("#", bar))
	}
	fmt.Println()
}
