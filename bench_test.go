// Benchmarks regenerating the paper's evaluation: one Benchmark per
// experiment table (DESIGN.md E1–E13, E17) plus the Figure 3/4 and
// migration scenario replays. Each iteration runs the full experiment at test scale and
// reports its headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both exercises every experiment end-to-end and surfaces the measured
// shape next to the timing. cmd/rdpbench prints the full tables at
// standard scale; EXPERIMENTS.md records them against the paper.
package rdp_test

import (
	"testing"

	rdp "repro"
	"repro/internal/experiments"
)

// benchScale keeps one experiment iteration in the tens-of-milliseconds
// range so -bench runs stay pleasant.
func benchScale() experiments.Scale {
	return experiments.SmallScale()
}

// BenchmarkE1Reliability regenerates E1: delivery ratio across the
// mobility/inactivity sweep. Reported metric: delivered/issued (must be
// 1.0).
func BenchmarkE1Reliability(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := experiments.E1Reliability(int64(i+1), benchScale())
		var issued, delivered int64
		for _, r := range rows {
			issued += r.Issued
			delivered += r.Delivered
		}
		if issued > 0 {
			ratio = float64(delivered) / float64(issued)
		}
	}
	b.ReportMetric(ratio, "delivery-ratio")
}

// BenchmarkE2ExactlyOnce regenerates E2: duplicates under the full
// protocol vs the causal/ack-priority ablations. Reported metrics:
// duplicates of the full protocol (want 0) and of the no-causal
// ablation (want > 0).
func BenchmarkE2ExactlyOnce(b *testing.B) {
	var fullDup, ablDup float64
	for i := 0; i < b.N; i++ {
		rows := experiments.E2ExactlyOnce(int64(i+1), benchScale())
		fullDup = float64(rows[0].Duplicates)
		ablDup = float64(rows[1].Duplicates + rows[1].Violations)
	}
	b.ReportMetric(fullDup, "full-duplicates")
	b.ReportMetric(ablDup, "ablation-anomalies")
}

// BenchmarkE3RetransmissionThreshold regenerates E3: the §5 threshold.
// Reported metrics: retransmissions per result well below and well
// above the t_wired+t_wireless boundary.
func BenchmarkE3RetransmissionThreshold(b *testing.B) {
	var below, above float64
	for i := 0; i < b.N; i++ {
		rows := experiments.E3RetransmissionThreshold(int64(i+1), benchScale())
		below = rows[0].RetransPerResult
		above = rows[len(rows)-1].RetransPerResult
	}
	b.ReportMetric(below, "retrans/result-below")
	b.ReportMetric(above, "retrans/result-above")
}

// BenchmarkE4Overhead regenerates E4: the §5 overhead formula. Reported
// metric: update coverage against the hand-offs+reactivations bound
// (want ~1.0) — the ack term matches exactly and is asserted in tests.
func BenchmarkE4Overhead(b *testing.B) {
	var coverage float64
	for i := 0; i < b.N; i++ {
		rows := experiments.E4Overhead(int64(i+1), benchScale())
		coverage = rows[0].UpdateCoverage
	}
	b.ReportMetric(coverage, "update-coverage")
}

// BenchmarkE5LoadBalance regenerates E5: forwarding-load fairness.
// Reported metrics: Jain index for RDP (→1) and for shared-home Mobile
// IP (→1/N).
func BenchmarkE5LoadBalance(b *testing.B) {
	var rdpJain, mipJain float64
	for i := 0; i < b.N; i++ {
		rows := experiments.E5LoadBalance(int64(i+1), benchScale())
		rdpJain = rows[0].Jain
		mipJain = rows[1].Jain
	}
	b.ReportMetric(rdpJain, "jain-rdp")
	b.ReportMetric(mipJain, "jain-mobileip")
}

// BenchmarkE6HandoffState regenerates E6: hand-off state volume.
// Reported metrics: bytes per hand-off at 50 pending results for RDP
// (flat, one pref) and the I-TCP-style image baseline (linear).
func BenchmarkE6HandoffState(b *testing.B) {
	var rdpBytes, itcpBytes float64
	for i := 0; i < b.N; i++ {
		rows := experiments.E6HandoffState(int64(i+1), benchScale())
		last := rows[len(rows)-1]
		rdpBytes = last.RDPBytesPerHO
		itcpBytes = last.ITCPBytesPerHO
	}
	b.ReportMetric(rdpBytes, "rdp-B/handoff")
	b.ReportMetric(itcpBytes, "itcp-B/handoff")
}

// BenchmarkE7VsMobileIP regenerates E7: delivery under mobility.
// Reported metrics: delivery ratio of RDP (1.0) and of plain Mobile IP
// (<1) at the fastest mobility level.
func BenchmarkE7VsMobileIP(b *testing.B) {
	var rdpRatio, mipRatio float64
	for i := 0; i < b.N; i++ {
		rows := experiments.E7VsMobileIP(int64(i+1), benchScale())
		for _, r := range rows {
			if r.MeanResidence != rows[0].MeanResidence {
				continue
			}
			switch r.Protocol {
			case "RDP":
				rdpRatio = r.Ratio
			case "MobileIP":
				mipRatio = r.Ratio
			}
		}
	}
	b.ReportMetric(rdpRatio, "ratio-rdp")
	b.ReportMetric(mipRatio, "ratio-mobileip")
}

// BenchmarkE8Subscriptions regenerates E8: SIDAM subscription
// notifications to roaming subscribers. Reported metric: notifications
// received / fired (want 1.0).
func BenchmarkE8Subscriptions(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := experiments.E8Subscriptions(int64(i+1), benchScale())
		var fired, received int64
		for _, r := range rows {
			fired += r.Fired
			received += r.Received
		}
		if fired > 0 {
			ratio = float64(received) / float64(fired)
		}
	}
	b.ReportMetric(ratio, "notify-ratio")
}

// BenchmarkFigure3Replay regenerates the Figure 3 worked example
// (trace-validated in internal/rdpcore's scenario tests).
func BenchmarkFigure3Replay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := experiments.ReplayFigure3(nil)
		if w.Stats.ResultsDelivered.Value() != 1 {
			b.Fatal("figure 3 replay did not deliver")
		}
	}
}

// BenchmarkFigure4Replay regenerates the Figure 4 worked example.
func BenchmarkFigure4Replay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := experiments.ReplayFigure4(nil)
		if w.Stats.ResultsDelivered.Value() != 3 {
			b.Fatal("figure 4 replay did not deliver")
		}
	}
}

// BenchmarkE12Migration regenerates E12: route stretch and placement
// fairness under proxy migration on the ring. Reported metrics: mean
// forwarding hops with the proxy fixed vs migrating at hop threshold 1,
// and duplicates across all RDP variants (must be 0 — migration must
// not cost exactly-once).
func BenchmarkE12Migration(b *testing.B) {
	var fixedHops, k1Hops, dups float64
	for i := 0; i < b.N; i++ {
		rows := experiments.E12Migration(int64(i+1), benchScale())
		dups = 0
		for _, r := range rows {
			switch r.Policy {
			case "RDP fixed proxy":
				fixedHops = r.MeanHops
			case "RDP hop k=1":
				k1Hops = r.MeanHops
			}
			if r.Policy != "MobileIP home=start" {
				dups += float64(r.Dups)
			}
		}
	}
	b.ReportMetric(fixedHops, "mean-hops-fixed")
	b.ReportMetric(k1Hops, "mean-hops-k1")
	b.ReportMetric(dups, "rdp-duplicates")
}

// BenchmarkMigrationReplay regenerates the mig1 worked example
// (trace-pinned in internal/experiments' golden tests).
func BenchmarkMigrationReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := experiments.ReplayMigration1(nil)
		if w.Stats.MigCompleted.Value() != 1 {
			b.Fatal("migration replay did not complete a migration")
		}
	}
}

// BenchmarkE17Disconnect regenerates E17 at bench scale: disconnection
// windows × MSS crashes × proxy migration over the offline queue,
// atomic batches and the station result cache. Reported metrics: total
// lost requests plus partially-delivered batches across the sweep (must
// be 0), total clean batch aborts (the stranded batches on the long
// rows — must be > 0, proving the deadline path runs), and the minimum
// cache hit ratio (must be ≥ 0.5 on the repeated-query workload).
func BenchmarkE17Disconnect(b *testing.B) {
	var lostPartial, aborted, minHit float64
	for i := 0; i < b.N; i++ {
		lostPartial, aborted, minHit = 0, 0, 1
		for _, r := range experiments.E17Disconnected(int64(i+1), benchScale()) {
			lostPartial += float64(r.Lost + r.BatchPartial)
			aborted += float64(r.BatchAborted)
			if r.HitRatio < minHit {
				minHit = r.HitRatio
			}
		}
	}
	b.ReportMetric(lostPartial, "lost+partial")
	b.ReportMetric(aborted, "clean-aborts")
	b.ReportMetric(minHit, "min-hit-ratio")
}

// BenchmarkE18MHCrash regenerates E18 at bench scale: mobile-host
// crash/amnesia windows × disconnections × MSS crashes × proxy
// migration under incarnation-scoped delivery and lease reclamation.
// Reported metrics: survivor-scope losses plus cross-incarnation
// deliveries plus partial batches across the sweep (must be 0), total
// proxies reclaimed by the lease GC (must be > 0, proving orphan
// reclamation runs), and total stale-incarnation drops (the scrub
// machinery engaging).
func BenchmarkE18MHCrash(b *testing.B) {
	var violations, reclaimed, staleDrops float64
	for i := 0; i < b.N; i++ {
		violations, reclaimed, staleDrops = 0, 0, 0
		for _, r := range experiments.E18MHCrash(int64(i+1), benchScale()) {
			violations += float64(r.Lost + r.CrossIncDeliveries + r.BatchPartial)
			if r.Leaked != "" {
				violations++
			}
			reclaimed += float64(r.Reclaimed)
			staleDrops += float64(r.StaleDrops)
		}
	}
	b.ReportMetric(violations, "violations")
	b.ReportMetric(reclaimed, "reclaimed")
	b.ReportMetric(staleDrops, "stale-drops")
}

// BenchmarkTCPRoundTrip measures one request→result round trip over the
// real-socket transport (internal/tcpnet): MH radio frame to the
// station's TCP endpoint, causally stamped wired frame to the server,
// and the result back down. Not a paper experiment — it quantifies the
// cost of the authors' planned process-based deployment relative to the
// simulated substrate.
func BenchmarkTCPRoundTrip(b *testing.B) {
	rt := rdp.NewLiveRuntime(1)
	cfg := rdp.DefaultConfig()
	cfg.ServerProc = rdp.Constant(0)
	world, net, err := rdp.NewTCPWorld(rt, cfg)
	if err != nil {
		b.Fatalf("NewTCPWorld: %v", err)
	}
	defer net.Close()
	rt.Start()
	defer rt.Stop()
	results := make(chan struct{}, 1)
	rt.Do(func() {
		mh := world.AddMH(1, 1)
		mh.OnResult(func(_ rdp.RequestID, _ []byte, dup bool) {
			if !dup {
				results <- struct{}{}
			}
		})
	})
	payload := []byte("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Do(func() { world.MHs[1].IssueRequest(1, payload) })
		<-results
	}
}

// BenchmarkE9HoldForInactive regenerates the §5 footnote 3 ablation.
// Reported metrics: proxy retransmissions with the optimization off and
// on at 50% inactivity.
func BenchmarkE9HoldForInactive(b *testing.B) {
	var off, on float64
	for i := 0; i < b.N; i++ {
		rows := experiments.E9HoldForInactive(int64(i+1), benchScale())
		off = float64(rows[2].Retrans)
		on = float64(rows[3].Retrans)
	}
	b.ReportMetric(off, "retrans-off")
	b.ReportMetric(on, "retrans-on")
}

// BenchmarkE10WiredFaults regenerates E10: delivery under injected
// wired loss and MSS crashes, recovery stack on vs off. Reported
// metrics: worst recovery-row delivery ratio across the sweep (must be
// 1.0), total recovery-row duplicates (must be 0), and the mean
// ablation ratio (measurably below 1).
func BenchmarkE10WiredFaults(b *testing.B) {
	var worstRecovery, recoveryDups, ablationMean float64
	for i := 0; i < b.N; i++ {
		rows := experiments.E10WiredFaults(int64(i+1), benchScale())
		worstRecovery, recoveryDups, ablationMean = 1, 0, 0
		var ablations int
		for _, r := range rows {
			if r.Recovery {
				if r.Ratio < worstRecovery {
					worstRecovery = r.Ratio
				}
				recoveryDups += float64(r.Duplicates)
			} else {
				ablationMean += r.Ratio
				ablations++
			}
		}
		if ablations > 0 {
			ablationMean /= float64(ablations)
		}
	}
	b.ReportMetric(worstRecovery, "recovery-ratio")
	b.ReportMetric(recoveryDups, "recovery-dups")
	b.ReportMetric(ablationMean, "ablation-ratio")
}

// BenchmarkE11Overload regenerates E11: goodput at 2x the hot station's
// capacity with the overload-protection stack on vs off. Reported
// metrics: protected goodput (plateau near 100% of capacity),
// unprotected goodput (collapse well below it), and admitted requests
// lost under protection (must be 0).
func BenchmarkE11Overload(b *testing.B) {
	var protGoodput, unprotGoodput, lostAdmitted float64
	for i := 0; i < b.N; i++ {
		rows := experiments.E11Overload(int64(i+1), benchScale())
		for _, r := range rows {
			if r.OfferedX == 2 {
				if r.Protected {
					protGoodput = r.GoodputPct
					lostAdmitted = float64(r.LostAdmitted)
				} else {
					unprotGoodput = r.GoodputPct
				}
			}
		}
	}
	b.ReportMetric(protGoodput, "protected-goodput%")
	b.ReportMetric(unprotGoodput, "unprotected-goodput%")
	b.ReportMetric(lostAdmitted, "lost-admitted")
}

// BenchmarkE15WindowedTransport regenerates E15 at bench scale: the
// windowed wireless transport against stop-and-wait across the loss ×
// overload grid. Reported metrics: goodput of both transports at the
// headline point (10% loss, 2x offered load), their ratio (must stay
// ≥ 2), and the windowed p99 result latency in milliseconds.
func BenchmarkE15WindowedTransport(b *testing.B) {
	var windowed, stopwait, ratio, p99ms float64
	for i := 0; i < b.N; i++ {
		rows := experiments.E15WindowedTransport(int64(i+1), benchScale())
		if w, s, ok := experiments.E15Headline(rows); ok && s.GoodputPct > 0 {
			windowed, stopwait = w.GoodputPct, s.GoodputPct
			ratio = w.GoodputPct / s.GoodputPct
			p99ms = float64(w.P99Latency.Milliseconds())
		}
	}
	b.ReportMetric(windowed, "windowed-goodput%")
	b.ReportMetric(stopwait, "stopwait-goodput%")
	b.ReportMetric(ratio, "goodput-ratio")
	b.ReportMetric(p99ms, "windowed-p99-ms")
}

// BenchmarkE13ParallelScale regenerates E13 at bench scale: the sharded
// conservative engine across its region sweep. Reported metrics: the
// minimum delivery ratio across all partitions (must be 1.0) and
// whether every partitioned run reproduced the 1-region headline
// (1 = all equal).
func BenchmarkE13ParallelScale(b *testing.B) {
	minRatio, allEq := 1.0, 1.0
	for i := 0; i < b.N; i++ {
		minRatio, allEq = 1.0, 1.0
		for _, r := range experiments.E13Scale(int64(i+1), benchScale(), nil, 0) {
			if r.Ratio < minRatio {
				minRatio = r.Ratio
			}
			if !r.HeadlineEq {
				allEq = 0
			}
		}
	}
	b.ReportMetric(minRatio, "min-delivery-ratio")
	b.ReportMetric(allEq, "headline-eq")
}

// BenchmarkE14WorkerScale regenerates E14 at bench scale: the
// multi-core engine's worker sweep at a fixed partition. Reported
// metrics: the minimum delivery ratio across all rows (must be 1.0) and
// whether every row's full Summary matched the Workers=1 baseline
// (1 = all equal) — worker count must never change a byte.
func BenchmarkE14WorkerScale(b *testing.B) {
	minRatio, allEq := 1.0, 1.0
	for i := 0; i < b.N; i++ {
		minRatio, allEq = 1.0, 1.0
		for _, r := range experiments.E14Scale(int64(i+1), benchScale(), nil, nil, false) {
			if r.Ratio < minRatio {
				minRatio = r.Ratio
			}
			if !r.HeadlineEq {
				allEq = 0
			}
		}
	}
	b.ReportMetric(minRatio, "min-delivery-ratio")
	b.ReportMetric(allEq, "headline-eq")
}
