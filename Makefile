# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-race race bench cover fmt vet check experiments examples explore viz bench-baseline bench-compare bench-profile

all: build test

build:
	go build ./...

test:
	go test ./...

# The race detector matters most for the substrates with real
# concurrency — livenet's dispatcher/timer goroutines and tcpnet's
# socket read loops — but the whole tree runs under it.
test-race:
	go test -race ./...

race: test-race

# check is the full pre-commit gate: formatting, vet, build, tests,
# the parallel-engine race sweep (the E14 serial==parallel property
# harness and the kernel arena under the race detector — first, because
# a data race there invalidates the rest), and the whole-tree race
# sweep.
check:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; fi
	go vet ./...
	go build ./...
	go test ./...
	go test -race ./internal/psim ./internal/sim
	go test -race -run TestChaosMHCrash ./internal/rdpcore
	go test -race ./...

bench:
	go test -bench=. -benchmem .

# Rewrite the committed benchmark baseline. Run on a quiet machine
# after an intentional performance change, and commit the result.
bench-baseline:
	go run ./cmd/rdpbench -quick -json -out bench/baseline.json

# Gate the working tree against the committed baseline: allocation
# counts and headline metrics must stay within internal/benchcmp's
# thresholds (times are reported, not gated).
bench-compare:
	@mkdir -p /tmp/rdpbench.$$$$ && \
	go run ./cmd/rdpbench -quick -json -out /tmp/rdpbench.$$$$/current.json >/dev/null && \
	go run ./cmd/benchcmp -base bench/baseline.json -new /tmp/rdpbench.$$$$/current.json; \
	status=$$?; rm -rf /tmp/rdpbench.$$$$; exit $$status

# Profile a quick evaluation pass: writes cpu.pprof and mem.pprof in the
# repo root (gitignored) for `go tool pprof`. Stale profiles from an
# earlier run are removed first, so a failed pass can't leave an old
# profile masquerading as this run's.
bench-profile:
	rm -f cpu.pprof mem.pprof
	go run ./cmd/rdpbench -quick -cpuprofile cpu.pprof -memprofile mem.pprof

cover:
	go test -cover ./...

fmt:
	gofmt -w .

vet:
	go vet ./...

# Regenerate the full evaluation tables (the source of EXPERIMENTS.md).
experiments:
	go run ./cmd/rdpbench

explore:
	go run ./cmd/rdpexplore -schedules 2000
	go run ./cmd/rdpexplore -exhaustive

# Draw the paper's Figures 3 and 4 as space-time diagrams.
viz:
	go run ./cmd/rdpviz -scenario fig3
	go run ./cmd/rdpviz -scenario fig4

examples:
	go run ./examples/quickstart
	go run ./examples/traffic
	go run ./examples/subscribe
	go run ./examples/loadbalance
	go run ./examples/groupchat
	go run ./examples/tcp
	go run ./examples/chaos
