# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-race race bench cover fmt vet check experiments examples explore viz bench-baseline bench-compare bench-profile bench-profile-test

all: build test

build:
	go build ./...

test:
	go test ./...

# The race detector matters most for the substrates with real
# concurrency — livenet's dispatcher/timer goroutines and tcpnet's
# socket read loops — but the whole tree runs under it.
test-race:
	go test -race ./...

race: test-race

# check is the full pre-commit gate: formatting, vet, build, tests,
# the parallel-engine race sweep (the E14 serial==parallel property
# harness and the kernel arena under the race detector — first, because
# a data race there invalidates the rest), and the whole-tree race
# sweep.
check:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; fi
	go vet ./...
	go build ./...
	go test ./...
	go test -race ./internal/psim ./internal/sim
	go test -race -run TestChaosMHCrash ./internal/rdpcore
	go test -race ./...

bench:
	go test -bench=. -benchmem .

# Rewrite the committed benchmark baseline. Run on a quiet machine
# after an intentional performance change, and commit the result.
bench-baseline:
	go run ./cmd/rdpbench -quick -json -out bench/baseline.json

# Gate the working tree against the committed baseline: allocation
# counts and headline metrics must stay within internal/benchcmp's
# thresholds (times are reported, not gated).
bench-compare:
	@mkdir -p /tmp/rdpbench.$$$$ && \
	go run ./cmd/rdpbench -quick -json -out /tmp/rdpbench.$$$$/current.json >/dev/null && \
	go run ./cmd/benchcmp -base bench/baseline.json -new /tmp/rdpbench.$$$$/current.json; \
	status=$$?; rm -rf /tmp/rdpbench.$$$$; exit $$status

# Profile a quick evaluation pass: writes cpu.pprof and mem.pprof in the
# repo root (gitignored) for `go tool pprof`. The script removes stale
# profiles up front and, via an EXIT trap, removes partial ones when the
# run errors or panics mid-experiment — a failed pass can't leave a
# profile masquerading as this run's.
bench-profile:
	sh scripts/bench-profile.sh

# Verify the bench-profile cleanup: a run that fails (unknown
# experiment) must exit nonzero and leave no .prof files behind.
bench-profile-test:
	@if sh scripts/bench-profile.sh -exp does-not-exist >/dev/null 2>&1; then \
		echo "bench-profile-test: failing run exited 0"; exit 1; fi
	@if [ -e cpu.pprof ] || [ -e mem.pprof ]; then \
		echo "bench-profile-test: stale profiles left behind"; exit 1; fi
	@echo "bench-profile-test: ok"

cover:
	go test -cover ./...

fmt:
	gofmt -w .

vet:
	go vet ./...

# Regenerate the full evaluation tables (the source of EXPERIMENTS.md).
experiments:
	go run ./cmd/rdpbench

explore:
	go run ./cmd/rdpexplore -schedules 2000
	go run ./cmd/rdpexplore -exhaustive

# Draw the paper's Figures 3 and 4 as space-time diagrams.
viz:
	go run ./cmd/rdpviz -scenario fig3
	go run ./cmd/rdpviz -scenario fig4

examples:
	go run ./examples/quickstart
	go run ./examples/traffic
	go run ./examples/subscribe
	go run ./examples/loadbalance
	go run ./examples/groupchat
	go run ./examples/tcp
	go run ./examples/chaos
