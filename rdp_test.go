package rdp_test

import (
	"testing"
	"time"

	rdp "repro"
)

// TestPublicQuickstart is the README quick-start, verified.
func TestPublicQuickstart(t *testing.T) {
	cfg := rdp.DefaultConfig()
	world := rdp.NewWorld(cfg)
	mh := world.AddMH(1, 1)
	var req rdp.RequestID
	world.Schedule(0, func() { req = mh.IssueRequest(1, []byte("hello")) })
	world.Schedule(40*time.Millisecond, func() { world.Migrate(1, 2) })
	world.RunUntil(2 * time.Second)
	if !mh.Seen(req) {
		t.Fatal("quick-start request not delivered")
	}
	if got := world.Stats.Handoffs.Value(); got != 1 {
		t.Errorf("Handoffs = %d, want 1", got)
	}
}

func TestPublicTraceAPI(t *testing.T) {
	rec := rdp.NewTrace()
	cfg := rdp.DefaultConfig()
	cfg.Observer = rec.Observe
	world := rdp.NewWorld(cfg)
	mh := world.AddMH(1, 1)
	world.Schedule(0, func() { mh.IssueRequest(1, []byte("x")) })
	world.RunUntil(time.Second)
	err := rec.ExpectSequence([]rdp.TraceStep{
		{Kind: rdp.KindRequest},
		{Kind: rdp.KindServerRequest},
		{Kind: rdp.KindServerResult},
		{Kind: rdp.KindResultDeliver},
		{Kind: rdp.KindAckMH},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicSidamAPI(t *testing.T) {
	cfg := rdp.DefaultConfig()
	cfg.NumServers = 3
	world := rdp.NewWorld(cfg)
	net := rdp.InstallSidam(world, rdp.SidamConfig{Regions: 9, InitialCongestion: 0})
	mh := world.AddMH(1, 1)
	var got rdp.Reading
	mh.OnResult(func(_ rdp.RequestID, payload []byte, dup bool) {
		if !dup {
			got, _ = rdp.ParseReading(payload)
		}
	})
	world.Schedule(0, func() { mh.IssueRequest(net.AnyTIS(), rdp.UpdatePayload(4, 77)) })
	world.Schedule(time.Second, func() { mh.IssueRequest(net.AnyTIS(), rdp.QueryPayload(4)) })
	world.RunUntil(3 * time.Second)
	if got.Region != 4 || got.Congestion != 77 {
		t.Errorf("reading = %+v, want region 4 congestion 77", got)
	}
}

func TestPublicBaselines(t *testing.T) {
	mip := rdp.NewMobileIPWorld(rdp.DefaultMobileIPConfig())
	mn := mip.AddMH(1, 2, 1)
	var req rdp.RequestID
	mip.Kernel.After(0, func() { req = mn.IssueRequest(1, []byte("q")) })
	mip.RunUntil(2 * time.Second)
	if !mn.Seen(req) {
		t.Error("Mobile IP baseline failed a stationary delivery")
	}

	it := rdp.NewITCPWorld(rdp.DefaultITCPConfig())
	m := it.AddMH(1, 1)
	var req2 rdp.RequestID
	it.Kernel.After(0, func() { req2 = m.IssueRequest(1, []byte("q")) })
	it.RunUntil(2 * time.Second)
	if !m.Seen(req2) {
		t.Error("I-TCP baseline failed a stationary delivery")
	}
}

func TestPublicWorkloadAPI(t *testing.T) {
	rng := rdp.NewRNG(1)
	cells := []rdp.MSS{1, 2, 3}
	itin := rdp.Itinerary(rng, rdp.Mobility{
		Picker:    rdp.UniformCells{Cells: cells},
		Residence: rdp.Constant(time.Second),
	}, 1, 10*time.Second)
	if len(itin) == 0 {
		t.Error("no itinerary events")
	}
	arr := rdp.ScheduleRequests(rng, rdp.Requests{
		Interarrival: rdp.Exponential{MeanDelay: time.Second},
		Servers:      []rdp.Server{1},
	}, 10*time.Second)
	if len(arr) == 0 {
		t.Error("no request arrivals")
	}
}

func TestPublicLiveRuntime(t *testing.T) {
	rt := rdp.NewLiveRuntime(1)
	cfg := rdp.DefaultConfig()
	cfg.WiredLatency = rdp.Constant(time.Millisecond)
	cfg.WirelessLatency = rdp.Constant(time.Millisecond)
	cfg.ServerProc = rdp.Constant(5 * time.Millisecond)
	world := rdp.NewLiveWorld(rt, cfg)
	rt.Start()
	defer rt.Stop()
	done := make(chan struct{}, 1)
	rt.Do(func() {
		mh := world.AddMH(1, 1)
		mh.OnResult(func(rdp.RequestID, []byte, bool) { done <- struct{}{} })
		mh.IssueRequest(1, []byte("live"))
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("live delivery timed out")
	}
}

func TestPublicTCPWorld(t *testing.T) {
	rt := rdp.NewLiveRuntime(1)
	cfg := rdp.DefaultConfig()
	cfg.ServerProc = rdp.Constant(30 * time.Millisecond)
	world, net, err := rdp.NewTCPWorld(rt, cfg)
	if err != nil {
		t.Fatalf("NewTCPWorld: %v", err)
	}
	rt.Start()
	defer func() {
		rt.Stop()
		net.Close()
	}()
	done := make(chan struct{}, 1)
	rt.Do(func() {
		mh := world.AddMH(1, 1)
		mh.OnResult(func(_ rdp.RequestID, _ []byte, dup bool) {
			if !dup {
				done <- struct{}{}
			}
		})
		mh.IssueRequest(1, []byte("over real sockets"))
	})
	// Hand off while the server computes; the proxy must chase over TCP.
	time.Sleep(10 * time.Millisecond)
	rt.Do(func() { world.Migrate(1, 2) })
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("TCP delivery timed out")
	}
	if addr := net.Addr(rdp.MSS(1).Node()); addr == "" {
		t.Error("station 1 has no TCP address")
	}
}

func TestJainIndexExport(t *testing.T) {
	if got := rdp.JainIndex([]float64{1, 1, 1, 1}); got != 1 {
		t.Errorf("JainIndex = %v, want 1", got)
	}
}

func TestPublicMulticastAPI(t *testing.T) {
	cfg := rdp.DefaultConfig()
	cfg.NumServers = 2
	world := rdp.NewWorld(cfg)
	net := rdp.InstallSidam(world, rdp.SidamConfig{Regions: 8})
	entry := net.TISList()[0]

	member := world.AddMH(1, 1)
	var got []string
	park := func() { member.IssueRequest(entry, rdp.MailboxPayload()) }
	member.OnResult(func(_ rdp.RequestID, payload []byte, dup bool) {
		if dup {
			return
		}
		if _, _, data, err := rdp.ParseGroupMsg(payload); err == nil {
			got = append(got, string(data))
			world.Schedule(0, park)
		}
	})
	world.Schedule(0, park)
	net.ConfigureGroup(3, []rdp.MH{1})

	sender := world.AddMH(2, 2)
	world.Schedule(500*time.Millisecond, func() {
		sender.IssueRequest(entry, rdp.MulticastPayload(3, []byte("ping")))
	})
	world.RunUntil(5 * time.Second)
	if len(got) != 1 || got[0] != "ping" {
		t.Fatalf("member received %v, want [ping]", got)
	}
}

func TestPublicRingLatency(t *testing.T) {
	pl := rdp.RingLatency(8, 2*time.Millisecond, time.Millisecond)
	near := pl(rdp.MSS(1).Node(), rdp.MSS(2).Node())
	far := pl(rdp.MSS(1).Node(), rdp.MSS(5).Node())
	if near == nil || far == nil {
		t.Fatal("station pairs must get a ring model")
	}
	if near.Mean() >= far.Mean() {
		t.Errorf("1-hop mean %v >= 4-hop mean %v", near.Mean(), far.Mean())
	}
	if pl(rdp.MSS(1).Node(), rdp.Server(1).Node()) != nil {
		t.Error("server pairs must fall back to the default wired latency")
	}

	cfg := rdp.DefaultConfig()
	cfg.NumMSS = 8
	cfg.WiredPairLatency = pl
	world := rdp.NewWorld(cfg)
	mh := world.AddMH(1, 1)
	var req rdp.RequestID
	world.Schedule(0, func() { req = mh.IssueRequest(1, []byte("ring")) })
	world.Schedule(30*time.Millisecond, func() { world.Migrate(1, 5) })
	world.RunUntil(3 * time.Second)
	if !mh.Seen(req) {
		t.Error("ring-latency world failed to deliver")
	}
}

func TestDefaultSidamConfig(t *testing.T) {
	cfg := rdp.DefaultSidamConfig()
	if cfg.Regions == 0 {
		t.Fatal("default SIDAM config has no regions")
	}
	world := rdp.NewWorld(rdp.DefaultConfig())
	net := rdp.InstallSidam(world, cfg)
	if len(net.TISList()) == 0 {
		t.Fatal("no Traffic Information Servers installed")
	}
}

// TestPublicFaultInjection drives the E10 machinery through the public
// API: a lossy backbone plus one station crash, countered by the wired
// ARQ and checkpoint recovery.
func TestPublicFaultInjection(t *testing.T) {
	cfg := rdp.DefaultConfig()
	cfg.WiredARQ = rdp.ARQConfig{Enabled: true, RTO: 30 * time.Millisecond}
	cfg.Checkpoint = true
	cfg.RecoveryGrace = 200 * time.Millisecond
	cfg.ServerProc = rdp.Constant(300 * time.Millisecond)
	w, inj := rdp.NewFaultedWorld(cfg, rdp.FaultPlan{
		Default: rdp.LinkFaults{DropProb: 0.2},
		Crashes: []rdp.Crash{{MSS: 1, At: 100 * time.Millisecond, RestartAt: 500 * time.Millisecond}},
	})
	mh := w.AddMH(1, 1)
	var req rdp.RequestID
	w.Schedule(0, func() { req = mh.IssueRequest(1, []byte("chaos")) })
	w.RunUntil(5 * time.Second)
	if !mh.Seen(req) {
		t.Fatal("result lost despite ARQ + crash recovery")
	}
	if inj.Stats.Drops.Value() == 0 {
		t.Error("injector reported no drops at 20% loss")
	}
	if got := w.Stats.MSSCrashes.Value(); got != 1 {
		t.Errorf("MSSCrashes = %d, want 1", got)
	}
}
