package rdp

import (
	"repro/internal/qrpc"
	"repro/internal/rdpcore"
)

// Queued RPC (the Rover-style complement the paper pairs RDP with in
// §4: QRPC guarantees reliable request *sending*, RDP reliable result
// *delivery*).
type (
	// QRPCClient queues invocations through disconnections and
	// retransmits on a backoff until the RDP-delivered result arrives.
	QRPCClient = qrpc.Client
	// QRPCOptions tunes the retransmission discipline.
	QRPCOptions = qrpc.Options
)

// NewQRPC wraps a mobile host in a queued-RPC client. The client
// installs itself as the host's result observer; deliver application
// replies through Invoke's callback instead of MobileHost.OnResult.
func NewQRPC(world *rdpcore.World, mh *rdpcore.MHNode, opts QRPCOptions) *QRPCClient {
	return qrpc.New(world, mh, opts)
}
